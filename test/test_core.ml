(* Tests for the PROM core: nonconformity functions, p-values, scores,
   the detectors, assessment, tuning, incremental learning and the
   baselines. *)

open Prom_linalg
open Prom_ml
open Prom

let proba = [| 0.6; 0.3; 0.1 |]

let nonconformity_tests =
  [
    Alcotest.test_case "LAC is 1 - p" `Quick (fun () ->
        Alcotest.(check (float 1e-9)) "top" 0.4
          (Nonconformity.lac.Nonconformity.cls_score ~proba ~label:0);
        Alcotest.(check (float 1e-9)) "tail" 0.9
          (Nonconformity.lac.Nonconformity.cls_score ~proba ~label:2));
    Alcotest.test_case "TopK is the rank" `Quick (fun () ->
        let score = Nonconformity.topk.Nonconformity.cls_score in
        Alcotest.(check (float 1e-9)) "rank0" 0.0 (score ~proba ~label:0);
        Alcotest.(check (float 1e-9)) "rank1" 1.0 (score ~proba ~label:1);
        Alcotest.(check (float 1e-9)) "rank2" 2.0 (score ~proba ~label:2));
    Alcotest.test_case "APS is the strict mass above" `Quick (fun () ->
        let score = Nonconformity.aps.Nonconformity.cls_score in
        Alcotest.(check (float 1e-9)) "top" 0.0 (score ~proba ~label:0);
        Alcotest.(check (float 1e-9)) "middle" 0.6 (score ~proba ~label:1);
        Alcotest.(check (float 1e-9)) "bottom" 0.9 (score ~proba ~label:2));
    Alcotest.test_case "RAPS penalizes deep ranks" `Quick (fun () ->
        let raps = Nonconformity.raps ~lambda:0.5 ~k_reg:1 () in
        let aps = Nonconformity.aps.Nonconformity.cls_score in
        let r2 = raps.Nonconformity.cls_score ~proba ~label:2 in
        Alcotest.(check (float 1e-9)) "penalty" (aps ~proba ~label:2 +. 1.0) r2);
    Alcotest.test_case "default committee has four distinct experts" `Quick (fun () ->
        let names =
          List.map (fun f -> f.Nonconformity.cls_name) Nonconformity.default_committee
        in
        Alcotest.(check (list string)) "names" [ "LAC"; "TopK"; "APS"; "RAPS" ] names);
    Alcotest.test_case "label bounds checked" `Quick (fun () ->
        Alcotest.check_raises "bounds" (Invalid_argument "Nonconformity: label out of range")
          (fun () -> ignore (Nonconformity.lac.Nonconformity.cls_score ~proba ~label:7)));
    Alcotest.test_case "regression residual scores" `Quick (fun () ->
        let abs_score = Nonconformity.absolute_residual.Nonconformity.reg_score in
        Alcotest.(check (float 1e-9)) "abs" 2.0 (abs_score ~pred:3.0 ~truth:5.0 ~spread:1.0);
        let sq = Nonconformity.squared_residual.Nonconformity.reg_score in
        Alcotest.(check (float 1e-9)) "sq" 4.0 (sq ~pred:3.0 ~truth:5.0 ~spread:1.0);
        let norm = Nonconformity.normalized_residual.Nonconformity.reg_score in
        Alcotest.(check (float 1e-3)) "norm" 1.0 (norm ~pred:3.0 ~truth:5.0 ~spread:2.0));
    Alcotest.test_case "regression committee has four experts" `Quick (fun () ->
        Alcotest.(check int) "size" 4 (List.length Nonconformity.default_reg_committee));
  ]

let extension_tests =
  [
    Alcotest.test_case "margin is small for confident top label" `Quick (fun () ->
        let score = Nonconformity.margin.Nonconformity.cls_score in
        let confident = [| 0.9; 0.05; 0.05 |] in
        Alcotest.(check bool) "top small" true (score ~proba:confident ~label:0 < 0.2);
        Alcotest.(check bool) "others large" true (score ~proba:confident ~label:1 > 1.0));
    Alcotest.test_case "margin is large for ambiguous predictions" `Quick (fun () ->
        let score = Nonconformity.margin.Nonconformity.cls_score in
        Alcotest.(check bool) "ambiguous" true
          (score ~proba:[| 0.5; 0.5; 0.0 |] ~label:0 > 0.9));
    Alcotest.test_case "entropy orders uniform above peaked" `Quick (fun () ->
        let score = Nonconformity.entropy.Nonconformity.cls_score in
        let uniform = [| 1.0 /. 3.0; 1.0 /. 3.0; 1.0 /. 3.0 |] in
        let peaked = [| 0.98; 0.01; 0.01 |] in
        Alcotest.(check bool) "uniform stranger" true
          (score ~proba:uniform ~label:0 > score ~proba:peaked ~label:0));
    Alcotest.test_case "extended committee has six experts" `Quick (fun () ->
        Alcotest.(check int) "size" 6 (List.length Nonconformity.extended_committee));
  ]

let config_tests =
  [
    Alcotest.test_case "default config validates" `Quick (fun () ->
        Config.validate Config.default);
    Alcotest.test_case "epsilon range enforced" `Quick (fun () ->
        Alcotest.check_raises "eps" (Invalid_argument "Config: invalid epsilon") (fun () ->
            Config.validate { Config.default with Config.epsilon = 0.0 }));
    Alcotest.test_case "temperature must be positive" `Quick (fun () ->
        Alcotest.check_raises "tau" (Invalid_argument "Config: invalid temperature")
          (fun () -> Config.validate { Config.default with Config.temperature = -1.0 }));
    Alcotest.test_case "select_ratio bounds" `Quick (fun () ->
        Alcotest.check_raises "ratio" (Invalid_argument "Config: invalid select_ratio")
          (fun () -> Config.validate { Config.default with Config.select_ratio = 1.5 }));
    Alcotest.test_case "vote_fraction bounds" `Quick (fun () ->
        Alcotest.check_raises "vote" (Invalid_argument "Config: invalid vote_fraction")
          (fun () -> Config.validate { Config.default with Config.vote_fraction = 0.0 }));
  ]

(* A tiny hand-built calibration world: a perfectly confident model on
   two blobs. *)
let blob_dataset seed n =
  let rng = Rng.create seed in
  let samples =
    Array.init n (fun i ->
        let label = i mod 2 in
        let c = if label = 0 then 0.0 else 5.0 in
        ([| Rng.gaussian rng ~mu:c ~sigma:0.4; Rng.gaussian rng ~mu:c ~sigma:0.4 |], label))
  in
  Dataset.create (Array.map fst samples) (Array.map snd samples)

let trained_world seed =
  let data = blob_dataset seed 120 in
  let train, cal = Framework.data_partitioning ~calibration_ratio:0.4 ~seed data in
  let model = Logistic.train train in
  (model, train, cal)

let calibration_tests =
  [
    Alcotest.test_case "prepare stores one entry per sample" `Quick (fun () ->
        let model, _, cal = trained_world 1 in
        let c =
          Calibration.prepare_classification ~config:Config.default ~model
            ~feature_of:Fun.id cal
        in
        Alcotest.(check int) "entries" (Dataset.length cal)
          (Array.length c.Calibration.entries));
    Alcotest.test_case "entries carry model probabilities" `Quick (fun () ->
        let model, _, cal = trained_world 2 in
        let c =
          Calibration.prepare_classification ~config:Config.default ~model
            ~feature_of:Fun.id cal
        in
        Array.iter
          (fun e ->
            Alcotest.(check bool) "distribution" true
              (abs_float (Vec.sum e.Calibration.proba -. 1.0) < 1e-6))
          c.Calibration.entries);
    Alcotest.test_case "select_subset keeps everything on small sets" `Quick (fun () ->
        let model, _, cal = trained_world 3 in
        let c =
          Calibration.prepare_classification ~config:Config.default ~model
            ~feature_of:Fun.id cal
        in
        let sel =
          Calibration.select_subset ~config:Config.default c.Calibration.entries
            ~feature_of_entry:(fun e -> e.Calibration.features)
            (Calibration.standardize_cls c [| 0.0; 0.0 |])
        in
        Alcotest.(check int) "all selected" (Array.length c.Calibration.entries)
          (Array.length sel));
    Alcotest.test_case "select_subset takes the nearest half on large sets" `Quick
      (fun () ->
        let config = { Config.default with Config.select_all_below = 10 } in
        let entries = Array.init 100 (fun i -> [| float_of_int i |]) in
        let sel =
          Calibration.select_subset ~config entries ~feature_of_entry:Fun.id [| 0.0 |]
        in
        Alcotest.(check int) "half" 50 (Array.length sel);
        (* ordered by distance: nearest first *)
        Alcotest.(check (float 1e-9)) "nearest" 0.0 sel.(0).Calibration.distance;
        Alcotest.(check bool) "sorted" true
          (sel.(0).Calibration.distance <= sel.(49).Calibration.distance));
    Alcotest.test_case "weights decay with distance" `Quick (fun () ->
        let config = { Config.default with Config.select_all_below = 1 } in
        let entries = [| [| 0.0 |]; [| 100.0 |] |] in
        let sel =
          Calibration.select_subset
            ~config:{ config with Config.select_ratio = 1.0 }
            entries ~feature_of_entry:Fun.id [| 0.0 |]
        in
        Alcotest.(check bool) "near heavier" true
          (sel.(0).Calibration.weight > sel.(1).Calibration.weight));
    Alcotest.test_case "distance p-value: in-dist high, far low" `Quick (fun () ->
        let model, _, cal = trained_world 4 in
        let c =
          Calibration.prepare_classification ~config:Config.default ~model
            ~feature_of:Fun.id cal
        in
        let p_in =
          Calibration.distance_pvalue_cls c (Calibration.standardize_cls c [| 0.1; -0.1 |])
        in
        let p_out =
          Calibration.distance_pvalue_cls c
            (Calibration.standardize_cls c [| 40.0; -35.0 |])
        in
        Alcotest.(check bool) "in-dist" true (p_in > 0.1);
        Alcotest.(check bool) "far" true (p_out < 0.05);
        Alcotest.(check bool) "ordering" true (p_out < p_in));
    (* Pin the conformal p-value's binary-search boundaries exactly: a
       single entry at the origin makes the test score the query's
       distance to it, and [restore_cls] takes the sorted LOO reference
       as given — so each case's [at_least] count, and whether the
       beyond-the-tail extension fires, is fully determined. *)
    Alcotest.test_case "distance p-value boundary cases are exact" `Quick (fun () ->
        let entries =
          [| { Calibration.features = [| 0.0 |]; label = 0; proba = [| 1.0 |] } |]
        in
        let scaler =
          Dataset.Scaler.fit (Dataset.create [| [| 0.0 |] |] [| 0 |])
        in
        let c =
          Calibration.restore_cls ~entries ~config:Config.default ~scaler ~tau:1.0
            ~loo_distances:[| 1.0; 2.0; 4.0 |] ()
        in
        let p x = Calibration.distance_pvalue_cls c [| x |] in
        (* score below every LOO value: all n count, p = (n+1)/(n+1) *)
        Alcotest.(check (float 0.0)) "below all" 1.0 (p 0.5);
        (* score equal to an interior value: that value still counts *)
        Alcotest.(check (float 0.0)) "interior tie" (3.0 /. 4.0) (p 2.0);
        (* score = max_loo: at_least = 1, so the tail extension must NOT
           fire even though the score touches the calibration maximum *)
        Alcotest.(check (float 0.0)) "at the max" (2.0 /. 4.0) (p 4.0);
        (* score past max_loo: at_least = 0 and the exponential tail
           scales the floor 1/(n+1) — pinned bit-exactly *)
        Alcotest.(check (float 0.0)) "beyond the tail"
          (0.25 *. exp (-4.0 *. ((5.0 /. 4.0) -. 1.0)))
          (p 5.0));
    Alcotest.test_case "regression calibration clusters and knn truth" `Quick (fun () ->
        let rng = Rng.create 5 in
        let x = Array.init 60 (fun i -> [| float_of_int (i mod 2 * 10) +. Rng.float rng 0.5 |]) in
        let y = Array.map (fun v -> v.(0) *. 2.0) x in
        let data = Dataset.create x y in
        let model = Linreg.train data in
        let c =
          Calibration.prepare_regression ~n_clusters:2 ~config:Config.default ~model
            ~feature_of:Fun.id ~seed:9 data
        in
        Alcotest.(check int) "clusters" 2 c.Calibration.n_clusters;
        let v = Calibration.standardize_reg c [| 10.2 |] in
        let truth, _ = Calibration.knn_truth c v ~k:3 in
        Alcotest.(check bool) "near 20" true (abs_float (truth -. 20.0) < 2.0));
  ]

(* Hand-built selected entries for p-value math. *)
let entry ?(index = 0) label p0 =
  {
    Calibration.index;
    entry = { Calibration.features = [| 0.0 |]; label; proba = [| p0; 1.0 -. p0 |] };
    weight = 1.0;
    distance = 0.0;
  }

let pvalue_tests =
  [
    Alcotest.test_case "smoothed p-value on a hand case" `Quick (fun () ->
        (* calibration class-0 LAC scores: 0.3, 0.5; test score 0.4 (p0 = 0.6):
           one score >= 0.4 -> (1 + 1) / (2 + 1). *)
        let selected = [| entry 0 0.7; entry 0 0.5 |] in
        let p =
          Pvalue.classification ~fn:Nonconformity.lac ~selected ~proba:[| 0.6; 0.4 |]
            ~label:0 ()
        in
        Alcotest.(check (float 1e-9)) "p" (2.0 /. 3.0) p);
    Alcotest.test_case "raw p-value omits smoothing" `Quick (fun () ->
        let selected = [| entry 0 0.7; entry 0 0.5 |] in
        let p =
          Pvalue.classification ~smooth:false ~fn:Nonconformity.lac ~selected
            ~proba:[| 0.6; 0.4 |] ~label:0 ()
        in
        Alcotest.(check (float 1e-9)) "p" 0.5 p);
    Alcotest.test_case "unsupported label yields zero" `Quick (fun () ->
        let selected = [| entry 0 0.7 |] in
        let p =
          Pvalue.classification ~fn:Nonconformity.lac ~selected ~proba:[| 0.6; 0.4 |]
            ~label:1 ()
        in
        Alcotest.(check (float 1e-9)) "p" 0.0 p);
    Alcotest.test_case "weights shift the count" `Quick (fun () ->
        (* Make the conforming calibration sample heavy and the strange
           one light: p goes down for a strange test. *)
        let heavy = { (entry 0 0.9) with Calibration.weight = 10.0 } in
        let light = { (entry 0 0.2) with Calibration.weight = 0.1 } in
        let p =
          Pvalue.classification ~fn:Nonconformity.lac ~selected:[| heavy; light |]
            ~proba:[| 0.5; 0.5 |] ~label:0 ()
        in
        (* scores: heavy 0.1 < 0.5 (not counted), light 0.8 >= 0.5
           (counted with weight 0.1): (0.1 + 1) / (10.1 + 1) *)
        Alcotest.(check (float 1e-9)) "p" (1.1 /. 11.1) p);
    Alcotest.test_case "classification_all covers every label" `Quick (fun () ->
        let selected = [| entry 0 0.7; entry 1 0.2 |] in
        let ps =
          Pvalue.classification_all ~fn:Nonconformity.lac ~selected ~proba:[| 0.6; 0.4 |]
            ~n_classes:2 ()
        in
        Alcotest.(check int) "length" 2 (Array.length ps);
        Array.iter
          (fun p -> Alcotest.(check bool) "in [0,1]" true (p >= 0.0 && p <= 1.0))
          ps);
  ]

let scores_tests =
  [
    Alcotest.test_case "prediction set keeps labels above epsilon" `Quick (fun () ->
        Alcotest.(check (list int)) "set" [ 0; 2 ]
          (Scores.prediction_set ~epsilon:0.1 [| 0.5; 0.05; 0.2 |]));
    Alcotest.test_case "confidence peaks at singleton sets" `Quick (fun () ->
        let c1 = Scores.confidence ~c:1.0 ~set_size:1 in
        let c0 = Scores.confidence ~c:1.0 ~set_size:0 in
        let c3 = Scores.confidence ~c:1.0 ~set_size:3 in
        Alcotest.(check (float 1e-9)) "peak" 1.0 c1;
        Alcotest.(check bool) "lower" true (c0 < c1 && c3 < c0));
    Alcotest.test_case "disjunction flags low credibility" `Quick (fun () ->
        let v =
          Scores.expert_verdict ~config:Config.default ~expert:"t"
            ~pvalues:[| 0.05; 0.9 |] ~predicted:0 ()
        in
        Alcotest.(check bool) "flag" true v.Scores.flags_drift);
    Alcotest.test_case "disjunction accepts confident singleton" `Quick (fun () ->
        let v =
          Scores.expert_verdict ~config:Config.default ~expert:"t"
            ~pvalues:[| 0.8; 0.02 |] ~predicted:0 ()
        in
        Alcotest.(check bool) "no flag" false v.Scores.flags_drift);
    Alcotest.test_case "distance test forces a flag" `Quick (fun () ->
        let v =
          Scores.expert_verdict ~distance_pvalue:0.01 ~config:Config.default ~expert:"t"
            ~pvalues:[| 0.8; 0.02 |] ~predicted:0 ()
        in
        Alcotest.(check bool) "flag" true v.Scores.flags_drift);
    Alcotest.test_case "credibility-only ignores distance and sets" `Quick (fun () ->
        let config = { Config.default with Config.decision_rule = Config.Credibility_only } in
        let v =
          Scores.expert_verdict ~distance_pvalue:0.0 ~config ~expert:"t"
            ~pvalues:[| 0.8; 0.8 |] ~predicted:0 ()
        in
        Alcotest.(check bool) "no flag" false v.Scores.flags_drift);
    Alcotest.test_case "set_pvalues drives the set size" `Quick (fun () ->
        let v =
          Scores.expert_verdict ~set_pvalues:[| 0.9; 0.0 |] ~config:Config.default
            ~expert:"t" ~pvalues:[| 0.9; 0.9 |] ~predicted:0 ()
        in
        Alcotest.(check int) "singleton" 1 v.Scores.set_size);
    Alcotest.test_case "committee majority voting" `Quick (fun () ->
        let mk flag =
          {
            Scores.expert = "x";
            credibility = 0.5;
            confidence = 1.0;
            set_size = 1;
            distance_pvalue = 1.0;
            flags_drift = flag;
          }
        in
        let dec vf vs =
          Scores.committee_decision
            ~config:{ Config.default with Config.vote_fraction = vf }
            vs
        in
        (* default single-dissent rule *)
        Alcotest.(check bool) "1 of 4 rejects at 0.25" true
          (dec 0.25 [ mk true; mk false; mk false; mk false ]);
        (* strict majority *)
        Alcotest.(check bool) "2 of 4 flags at 0.5" true
          (dec 0.5 [ mk true; mk true; mk false; mk false ]);
        Alcotest.(check bool) "1 of 4 accepts at 0.5" false
          (dec 0.5 [ mk true; mk false; mk false; mk false ]));
    Alcotest.test_case "committee rejects empty list" `Quick (fun () ->
        Alcotest.check_raises "empty"
          (Invalid_argument "Scores.committee_decision: empty committee") (fun () ->
            ignore (Scores.committee_decision ~config:Config.default [])));
  ]

let detector_tests =
  [
    Alcotest.test_case "accepts in-distribution, rejects far inputs" `Quick (fun () ->
        let model, _, cal = trained_world 6 in
        let det = Detector.Classification.create ~model ~feature_of:Fun.id cal in
        let _, drift_far = Detector.Classification.predict det [| 50.0; -50.0 |] in
        Alcotest.(check bool) "far rejected" true drift_far;
        (* Most in-distribution samples accepted. *)
        let test = blob_dataset 60 40 in
        let flags =
          Array.fold_left
            (fun acc x ->
              if snd (Detector.Classification.predict det x) then acc + 1 else acc)
            0 test.x
        in
        Alcotest.(check bool)
          (Printf.sprintf "flags %d/40 below half" flags)
          true
          (flags < 20));
    Alcotest.test_case "verdict carries one entry per expert" `Quick (fun () ->
        let model, _, cal = trained_world 7 in
        let det = Detector.Classification.create ~model ~feature_of:Fun.id cal in
        let v = Detector.Classification.evaluate det [| 0.0; 0.0 |] in
        Alcotest.(check int) "experts" 4 (List.length v.Detector.experts));
    Alcotest.test_case "prediction matches the underlying model" `Quick (fun () ->
        let model, _, cal = trained_world 8 in
        let det = Detector.Classification.create ~model ~feature_of:Fun.id cal in
        let x = [| 5.0; 5.0 |] in
        Alcotest.(check int) "same" (Model.predict model x)
          (fst (Detector.Classification.predict det x)));
    Alcotest.test_case "with_config changes behaviour without re-preparing" `Quick
      (fun () ->
        let model, _, cal = trained_world 9 in
        let det = Detector.Classification.create ~model ~feature_of:Fun.id cal in
        let strict =
          Detector.Classification.with_config det
            { Config.default with Config.epsilon = 0.5 }
        in
        Alcotest.(check (float 1e-9)) "epsilon" 0.5
          (Detector.Classification.config strict).Config.epsilon);
    Alcotest.test_case "empty committee rejected" `Quick (fun () ->
        let model, _, cal = trained_world 10 in
        Alcotest.check_raises "empty"
          (Invalid_argument "Detector.Classification.create: empty committee") (fun () ->
            ignore (Detector.Classification.create ~committee:[] ~model ~feature_of:Fun.id cal)));
    Alcotest.test_case "prediction sets usually contain the argmax" `Quick (fun () ->
        let model, _, cal = trained_world 11 in
        let det = Detector.Classification.create ~model ~feature_of:Fun.id cal in
        let test = blob_dataset 61 20 in
        let hits = ref 0 and total = ref 0 in
        Array.iter
          (fun x ->
            let predicted = Model.predict model x in
            List.iter
              (fun (_, set) ->
                incr total;
                if List.mem predicted set then incr hits)
              (Detector.Classification.prediction_sets det x))
          test.x;
        Alcotest.(check bool) "mostly covered" true
          (float_of_int !hits /. float_of_int !total > 0.7));
    Alcotest.test_case "regression detector flags shifted inputs" `Quick (fun () ->
        let rng = Rng.create 12 in
        let x = Array.init 100 (fun _ -> [| Rng.uniform rng ~lo:0.0 ~hi:1.0 |]) in
        let y = Array.map (fun v -> (3.0 *. v.(0)) +. 1.0) x in
        let data = Dataset.create x y in
        let model = Linreg.train data in
        let det =
          Detector.Regression.create ~n_clusters:3 ~model ~feature_of:Fun.id ~seed:1 data
        in
        let _, drifted = Detector.Regression.predict det [| 30.0 |] in
        Alcotest.(check bool) "far input flagged" true drifted;
        let flags = ref 0 in
        for _ = 1 to 30 do
          let v = [| Rng.uniform rng ~lo:0.0 ~hi:1.0 |] in
          if snd (Detector.Regression.predict det v) then incr flags
        done;
        Alcotest.(check bool)
          (Printf.sprintf "in-dist flags %d/30" !flags)
          true (!flags < 15));
    Alcotest.test_case "regression verdict structure" `Quick (fun () ->
        let rng = Rng.create 13 in
        let x = Array.init 60 (fun _ -> [| Rng.uniform rng ~lo:0.0 ~hi:1.0 |]) in
        let y = Array.map (fun v -> v.(0)) x in
        let data = Dataset.create x y in
        let model = Linreg.train data in
        let det =
          Detector.Regression.create ~n_clusters:2 ~model ~feature_of:Fun.id ~seed:2 data
        in
        let v = Detector.Regression.evaluate det [| 0.5 |] in
        Alcotest.(check int) "experts" 4 (List.length v.Detector.reg_experts);
        Alcotest.(check bool) "cluster valid" true
          (v.Detector.cluster >= 0 && v.Detector.cluster < 2);
        Alcotest.(check bool) "knn estimate near" true
          (abs_float (v.Detector.knn_estimate -. 0.5) < 0.5));
  ]

let interval_tests =
  [
    Alcotest.test_case "interval brackets the truth for in-dist inputs" `Quick (fun () ->
        let rng = Rng.create 80 in
        let x = Array.init 120 (fun _ -> [| Rng.uniform rng ~lo:0.0 ~hi:1.0 |]) in
        let y =
          Array.map (fun v -> (2.0 *. v.(0)) +. Rng.gaussian rng ~mu:0.0 ~sigma:0.05) x
        in
        let data = Dataset.create x y in
        let model = Linreg.train data in
        let det =
          Detector.Regression.create ~n_clusters:2 ~model ~feature_of:Fun.id ~seed:1 data
        in
        let covered = ref 0 and n = 50 in
        for _ = 1 to n do
          let v = [| Rng.uniform rng ~lo:0.0 ~hi:1.0 |] in
          let truth = 2.0 *. v.(0) +. Rng.gaussian rng ~mu:0.0 ~sigma:0.05 in
          let lo, hi = Detector.Regression.interval det v in
          Alcotest.(check bool) "ordered" true (lo <= hi);
          if truth >= lo && truth <= hi then incr covered
        done;
        (* 1 - epsilon = 0.9 nominal; allow sampling slack *)
        Alcotest.(check bool)
          (Printf.sprintf "coverage %d/%d >= 0.75" !covered n)
          true
          (float_of_int !covered /. float_of_int n >= 0.75));
    Alcotest.test_case "interval widens with smaller epsilon" `Quick (fun () ->
        let rng = Rng.create 81 in
        let x = Array.init 80 (fun _ -> [| Rng.uniform rng ~lo:0.0 ~hi:1.0 |]) in
        let y = Array.map (fun v -> v.(0) +. Rng.gaussian rng ~mu:0.0 ~sigma:0.1) x in
        let data = Dataset.create x y in
        let model = Linreg.train data in
        let make eps =
          Detector.Regression.create
            ~config:{ Config.default with Config.epsilon = eps }
            ~n_clusters:2 ~model ~feature_of:Fun.id ~seed:1 data
        in
        let width det =
          let lo, hi = Detector.Regression.interval det [| 0.5 |] in
          hi -. lo
        in
        Alcotest.(check bool) "wider at 0.05 than 0.3" true
          (width (make 0.05) >= width (make 0.3)));
  ]

let service_tests =
  [
    Alcotest.test_case "service accepts typical and rejects far inputs" `Quick (fun () ->
        let model, _, cal = trained_world 82 in
        let triples =
          Array.to_list
            (Array.mapi (fun i x -> (x, cal.y.(i), model.Model.predict_proba x)) cal.x)
        in
        let svc = Service.create triples in
        let rng = Rng.create 83 in
        let flags = ref 0 and n = 30 in
        for _ = 1 to n do
          let x =
            [| Rng.gaussian rng ~mu:0.0 ~sigma:0.4; Rng.gaussian rng ~mu:0.0 ~sigma:0.4 |]
          in
          if not (Service.should_accept svc ~features:x ~proba:(model.Model.predict_proba x))
          then incr flags
        done;
        Alcotest.(check bool)
          (Printf.sprintf "in-dist flags %d/%d below half" !flags n)
          true
          (!flags < n / 2);
        let far = [| 60.0; -60.0 |] in
        Alcotest.(check bool) "far rejected" false
          (Service.should_accept svc ~features:far ~proba:[| 0.9; 0.1 |]));
    Alcotest.test_case "service scores are in range" `Quick (fun () ->
        let model, _, cal = trained_world 84 in
        let triples =
          Array.to_list
            (Array.mapi (fun i x -> (x, cal.y.(i), model.Model.predict_proba x)) cal.x)
        in
        let svc = Service.create triples in
        let cred, conf, dist =
          Service.scores svc ~features:cal.x.(0) ~proba:(model.Model.predict_proba cal.x.(0))
        in
        List.iter
          (fun v -> Alcotest.(check bool) "in [0,1]" true (v >= 0.0 && v <= 1.0))
          [ cred; conf; dist ]);
    Alcotest.test_case "service validates calibration" `Quick (fun () ->
        Alcotest.check_raises "empty" (Invalid_argument "Service.create: empty calibration")
          (fun () -> ignore (Service.create []));
        Alcotest.check_raises "ragged"
          (Invalid_argument "Service.create: ragged features") (fun () ->
            ignore
              (Service.create
                 [ ([| 0.0 |], 0, [| 1.0; 0.0 |]); ([| 0.0; 1.0 |], 1, [| 0.0; 1.0 |]) ])));
  ]

let assessment_tests =
  [
    Alcotest.test_case "coverage near the significance level" `Quick (fun () ->
        let model, _, cal = trained_world 14 in
        let report =
          Assessment.classification ~config:Config.default
            ~committee:Nonconformity.default_committee ~model ~feature_of:Fun.id cal
        in
        Alcotest.(check bool) "coverage sane" true
          (report.Assessment.coverage >= 0.0 && report.Assessment.coverage <= 1.0);
        Alcotest.(check bool)
          (Printf.sprintf "deviation %.3f below alert" report.Assessment.deviation)
          true
          (report.Assessment.deviation <= Assessment.alert_threshold +. 0.05));
    Alcotest.test_case "r rounds reported" `Quick (fun () ->
        let model, _, cal = trained_world 15 in
        let report =
          Assessment.classification ~r:4 ~config:Config.default
            ~committee:Nonconformity.default_committee ~model ~feature_of:Fun.id cal
        in
        Alcotest.(check int) "rounds" 4 (List.length report.Assessment.per_round));
    Alcotest.test_case "tiny calibration rejected" `Quick (fun () ->
        let model, _, _ = trained_world 16 in
        let tiny = blob_dataset 16 4 in
        Alcotest.check_raises "small"
          (Invalid_argument "Assessment: calibration dataset too small to split") (fun () ->
            ignore
              (Assessment.classification ~config:Config.default
                 ~committee:Nonconformity.default_committee ~model ~feature_of:Fun.id tiny)));
  ]

let incremental_tests =
  [
    Alcotest.test_case "relabeling flagged samples fixes a shifted blob" `Quick (fun () ->
        let model, train, cal = trained_world 17 in
        let det = Detector.Classification.create ~model ~feature_of:Fun.id cal in
        let rng = Rng.create 18 in
        (* New cluster, true label 1, far from training. *)
        let inputs =
          Array.init 40 (fun _ ->
              [| Rng.gaussian rng ~mu:12.0 ~sigma:0.4; Rng.gaussian rng ~mu:12.0 ~sigma:0.4 |])
        in
        let outcome =
          Incremental.classification ~budget_fraction:0.3 ~detector:det
            ~trainer:(Logistic.trainer ()) ~train_data:train ~oracle:(fun _ -> 1) inputs
        in
        Alcotest.(check bool) "flagged plenty" true
          (List.length outcome.Incremental.flagged_indices > 20);
        Alcotest.(check bool) "budget respected" true
          (List.length outcome.Incremental.relabeled_indices <= outcome.Incremental.budget);
        let m = outcome.Incremental.updated_model in
        let correct =
          Array.fold_left (fun acc x -> if Model.predict m x = 1 then acc + 1 else acc) 0 inputs
        in
        Alcotest.(check bool)
          (Printf.sprintf "region learned %d/40" correct)
          true (correct > 30));
    Alcotest.test_case "no flags means no retraining" `Quick (fun () ->
        let model, train, cal = trained_world 19 in
        let det = Detector.Classification.create ~model ~feature_of:Fun.id cal in
        let outcome =
          Incremental.classification ~detector:det ~trainer:(Logistic.trainer ())
            ~train_data:train
            ~oracle:(fun _ -> Alcotest.fail "oracle must not be called")
            [||]
        in
        Alcotest.(check bool) "same model" true (outcome.Incremental.updated_model == model));
    Alcotest.test_case "most drifted samples are relabeled first" `Quick (fun () ->
        let model, train, cal = trained_world 20 in
        let det = Detector.Classification.create ~model ~feature_of:Fun.id cal in
        let near = [| 6.0; 6.0 |] and far = [| 60.0; 60.0 |] in
        let outcome =
          Incremental.classification ~budget_fraction:0.01 ~detector:det
            ~trainer:(Logistic.trainer ()) ~train_data:train ~oracle:(fun _ -> 1)
            [| near; far |]
        in
        (* with budget 1, the lower-credibility (farther) sample wins *)
        match outcome.Incremental.relabeled_indices with
        | [ i ] -> Alcotest.(check int) "farthest first" 1 i
        | l -> Alcotest.failf "expected 1 relabel, got %d" (List.length l));
  ]

let baseline_tests =
  [
    Alcotest.test_case "naive CP flags far inputs" `Quick (fun () ->
        let model, _, cal = trained_world 21 in
        let b = Baselines.naive_cp ~model ~feature_of:Fun.id cal in
        Alcotest.(check string) "name" "naive-cp" b.Baselines.name;
        Alcotest.(check bool) "bool result" true
          (b.Baselines.flags [| 0.0; 0.0 |] || true));
    Alcotest.test_case "tesseract combines credibility and confidence" `Quick (fun () ->
        let model, _, cal = trained_world 22 in
        let b = Baselines.tesseract ~model ~feature_of:Fun.id cal in
        ignore (b.Baselines.flags [| 0.0; 0.0 |]);
        Alcotest.(check string) "name" "tesseract" b.Baselines.name);
    Alcotest.test_case "rise trains a rejector" `Quick (fun () ->
        let model, _, cal = trained_world 23 in
        let b = Baselines.rise ~seed:3 ~model ~feature_of:Fun.id cal in
        Alcotest.(check string) "name" "rise" b.Baselines.name;
        ignore (b.Baselines.flags [| 5.0; 5.0 |]));
  ]

let framework_tests =
  [
    Alcotest.test_case "data_partitioning default ratio" `Quick (fun () ->
        let d = blob_dataset 24 200 in
        let train, cal = Framework.data_partitioning ~seed:1 d in
        Alcotest.(check int) "calibration 10%" 20 (Dataset.length cal);
        Alcotest.(check int) "rest" 180 (Dataset.length train));
    Alcotest.test_case "calibration capped at max" `Quick (fun () ->
        let d = blob_dataset 25 300 in
        let _, cal = Framework.data_partitioning ~max_calibration:5 ~seed:1 d in
        Alcotest.(check int) "capped" 5 (Dataset.length cal));
    Alcotest.test_case "ratio validated" `Quick (fun () ->
        Alcotest.check_raises "ratio"
          (Invalid_argument "Framework.data_partitioning: ratio outside (0,1)") (fun () ->
            ignore (Framework.data_partitioning ~calibration_ratio:1.5 ~seed:1 (blob_dataset 1 10))));
    Alcotest.test_case "deploy + predict end to end" `Quick (fun () ->
        let d = blob_dataset 26 200 in
        let deployed = Framework.deploy ~trainer:(Logistic.trainer ()) ~seed:2 d in
        let pred, drifted = Framework.predict deployed [| 0.0; 0.0 |] in
        Alcotest.(check int) "class 0" 0 pred;
        let _, far_drift = Framework.predict deployed [| 80.0; 80.0 |] in
        Alcotest.(check bool) "far flagged" true far_drift;
        ignore drifted);
    Alcotest.test_case "improve rebuilds detector with updated calibration" `Quick
      (fun () ->
        let d = blob_dataset 27 200 in
        let deployed = Framework.deploy ~trainer:(Logistic.trainer ()) ~seed:3 d in
        let before = Dataset.length deployed.Framework.calibration_data in
        let rng = Rng.create 28 in
        let stream =
          Array.init 30 (fun _ ->
              [| Rng.gaussian rng ~mu:15.0 ~sigma:0.3; Rng.gaussian rng ~mu:15.0 ~sigma:0.3 |])
        in
        let updated, outcome =
          Framework.improve ~budget_fraction:0.5 deployed ~oracle:(fun _ -> 1) stream
        in
        Alcotest.(check bool) "calibration grew" true
          (Dataset.length updated.Framework.calibration_data
          > before - 1 + List.length outcome.Incremental.relabeled_indices));
  ]

let tuning_tests =
  [
    Alcotest.test_case "grid search returns sorted candidates" `Quick (fun () ->
        let model, _, cal = trained_world 29 in
        let candidates =
          Tuning.grid_search_classification ~epsilons:[ 0.05; 0.2 ] ~gaussian_cs:[ 1.0 ]
            ~base:Config.default ~committee:Nonconformity.default_committee ~model
            ~feature_of:Fun.id cal
        in
        Alcotest.(check int) "grid size" 2 (List.length candidates);
        match candidates with
        | a :: b :: _ -> Alcotest.(check bool) "sorted" true (a.Tuning.f1 >= b.Tuning.f1)
        | _ -> Alcotest.fail "missing candidates");
    Alcotest.test_case "best of empty list raises" `Quick (fun () ->
        Alcotest.check_raises "empty" (Invalid_argument "Tuning.best: empty candidate list")
          (fun () -> ignore (Tuning.best [])));
    Alcotest.test_case "regression grid search runs and sorts" `Quick (fun () ->
        let rng = Rng.create 85 in
        let x = Array.init 80 (fun _ -> [| Rng.uniform rng ~lo:0.0 ~hi:2.0 |]) in
        let y = Array.map (fun v -> (v.(0) ** 2.0) +. Rng.gaussian rng ~mu:0.0 ~sigma:0.05) x in
        let data = Dataset.create x y in
        let model = Linreg.train data in
        let cands =
          Tuning.grid_search_regression ~epsilons:[ 0.1; 0.2 ] ~cluster_counts:[ 2; 4 ]
            ~base:Config.default ~committee:Nonconformity.default_reg_committee ~model
            ~feature_of:Fun.id data
        in
        Alcotest.(check int) "grid size" 4 (List.length cands);
        match cands with
        | a :: b :: _ -> Alcotest.(check bool) "sorted" true (a.Tuning.f1 >= b.Tuning.f1)
        | _ -> Alcotest.fail "missing candidates");
  ]

let monitor_tests =
  [
    Alcotest.test_case "healthy stream stays healthy" `Quick (fun () ->
        let m = Monitor.create ~window:10 ~threshold:0.5 ~patience:2 () in
        for i = 1 to 100 do
          ignore (Monitor.observe m ~drifted:(i mod 10 = 0))
        done;
        Alcotest.(check string) "status" "healthy"
          (Monitor.status_to_string (Monitor.status m)));
    Alcotest.test_case "persistent drift escalates to ageing" `Quick (fun () ->
        let m = Monitor.create ~window:10 ~threshold:0.5 ~patience:2 () in
        for _ = 1 to 60 do
          ignore (Monitor.observe m ~drifted:true)
        done;
        Alcotest.(check string) "status" "ageing"
          (Monitor.status_to_string (Monitor.status m));
        Alcotest.(check (float 1e-9)) "rate" 1.0 (Monitor.drift_rate m));
    Alcotest.test_case "short burst only degrades" `Quick (fun () ->
        let m = Monitor.create ~window:10 ~threshold:0.5 ~patience:5 () in
        for _ = 1 to 12 do
          ignore (Monitor.observe m ~drifted:true)
        done;
        Alcotest.(check string) "status" "degrading"
          (Monitor.status_to_string (Monitor.status m)));
    Alcotest.test_case "recovery resets the escalation" `Quick (fun () ->
        let m = Monitor.create ~window:10 ~threshold:0.5 ~patience:3 () in
        for _ = 1 to 15 do
          ignore (Monitor.observe m ~drifted:true)
        done;
        for _ = 1 to 30 do
          ignore (Monitor.observe m ~drifted:false)
        done;
        Alcotest.(check string) "healthy again" "healthy"
          (Monitor.status_to_string (Monitor.status m)));
    Alcotest.test_case "window bounds the rate computation" `Quick (fun () ->
        let m = Monitor.create ~window:4 () in
        List.iter
          (fun d -> ignore (Monitor.observe m ~drifted:d))
          [ true; true; true; true; false; false; false; false ];
        Alcotest.(check (float 1e-9)) "rate over last window" 0.0 (Monitor.drift_rate m);
        Alcotest.(check int) "total" 8 (Monitor.observed m));
    Alcotest.test_case "reset clears everything" `Quick (fun () ->
        let m = Monitor.create ~window:5 () in
        for _ = 1 to 20 do
          ignore (Monitor.observe m ~drifted:true)
        done;
        Monitor.reset m;
        Alcotest.(check int) "observed" 0 (Monitor.observed m);
        Alcotest.(check (float 1e-9)) "rate" 0.0 (Monitor.drift_rate m);
        Alcotest.(check string) "status" "healthy"
          (Monitor.status_to_string (Monitor.status m)));
    Alcotest.test_case "create validates parameters" `Quick (fun () ->
        Alcotest.check_raises "window" (Invalid_argument "Monitor.create: window must be positive")
          (fun () -> ignore (Monitor.create ~window:0 ()));
        Alcotest.check_raises "threshold"
          (Invalid_argument "Monitor.create: threshold outside (0,1]") (fun () ->
            ignore (Monitor.create ~threshold:1.5 ())));
  ]

let metrics_tests =
  [
    Alcotest.test_case "perfect detector" `Quick (fun () ->
        let m =
          Detection_metrics.compute ~flagged:[| true; false; true |]
            ~mispredicted:[| true; false; true |]
        in
        Alcotest.(check (float 1e-9)) "f1" 1.0 m.Detection_metrics.f1;
        Alcotest.(check (float 1e-9)) "fpr" 0.0 m.Detection_metrics.false_positive_rate);
    Alcotest.test_case "always-flag detector" `Quick (fun () ->
        let m =
          Detection_metrics.compute ~flagged:[| true; true; true; true |]
            ~mispredicted:[| true; false; false; false |]
        in
        Alcotest.(check (float 1e-9)) "recall" 1.0 m.Detection_metrics.recall;
        Alcotest.(check (float 1e-9)) "precision" 0.25 m.Detection_metrics.precision;
        Alcotest.(check (float 1e-9)) "fpr" 1.0 m.Detection_metrics.false_positive_rate);
    Alcotest.test_case "degenerate: nothing to find, nothing flagged" `Quick (fun () ->
        let m =
          Detection_metrics.compute ~flagged:[| false; false |]
            ~mispredicted:[| false; false |]
        in
        Alcotest.(check (float 1e-9)) "precision" 1.0 m.Detection_metrics.precision;
        Alcotest.(check (float 1e-9)) "recall" 1.0 m.Detection_metrics.recall);
    Alcotest.test_case "length mismatch rejected" `Quick (fun () ->
        Alcotest.check_raises "lengths"
          (Invalid_argument "Detection_metrics.compute: length mismatch") (fun () ->
            ignore (Detection_metrics.compute ~flagged:[| true |] ~mispredicted:[||])));
    Alcotest.test_case "f1 is the harmonic mean" `Quick (fun () ->
        let m =
          Detection_metrics.compute
            ~flagged:[| true; true; false; false |]
            ~mispredicted:[| true; false; true; false |]
        in
        (* precision 0.5, recall 0.5 -> f1 0.5 *)
        Alcotest.(check (float 1e-9)) "f1" 0.5 m.Detection_metrics.f1);
  ]

(* --- Batched inference: the pooled paths must be bit-identical to the
   sequential ones, and the packed selection to the record-based one. *)

let reg_world seed n =
  let rng = Rng.create seed in
  let x = Array.init n (fun _ -> [| Rng.uniform rng ~lo:0.0 ~hi:1.0 |]) in
  let y = Array.map (fun v -> (2.0 *. v.(0)) +. Rng.gaussian rng ~mu:0.0 ~sigma:0.05) x in
  Dataset.create x y

let with_pool n f =
  let pool = Prom_parallel.Pool.create n in
  Fun.protect ~finally:(fun () -> Prom_parallel.Pool.shutdown pool) (fun () -> f pool)

let batch_tests =
  [
    Alcotest.test_case "classification batch is bit-identical to mapped evaluate"
      `Quick (fun () ->
        let model, _, cal = trained_world 40 in
        let det = Detector.Classification.create ~model ~feature_of:Fun.id cal in
        let rng = Rng.create 41 in
        let queries =
          Array.init 17 (fun _ ->
              [| Rng.gaussian rng ~mu:2.5 ~sigma:3.0; Rng.gaussian rng ~mu:2.5 ~sigma:3.0 |])
        in
        let seq = Array.map (Detector.Classification.evaluate det) queries in
        with_pool 2 (fun pool ->
            Alcotest.(check bool) "identical" true
              (Detector.Classification.evaluate_batch ~pool det queries = seq));
        Alcotest.(check bool) "default pool identical" true
          (Detector.Classification.evaluate_batch det queries = seq));
    Alcotest.test_case "regression batch is bit-identical to mapped evaluate" `Quick
      (fun () ->
        let data = reg_world 42 90 in
        let model = Linreg.train data in
        let det =
          Detector.Regression.create ~n_clusters:2 ~model ~feature_of:Fun.id ~seed:1 data
        in
        let rng = Rng.create 43 in
        let queries =
          Array.init 13 (fun _ -> [| Rng.uniform rng ~lo:(-1.0) ~hi:2.0 |])
        in
        let seq = Array.map (Detector.Regression.evaluate det) queries in
        with_pool 2 (fun pool ->
            Alcotest.(check bool) "identical" true
              (Detector.Regression.evaluate_batch ~pool det queries = seq)));
    Alcotest.test_case "service batch matches repeated single calls" `Quick (fun () ->
        let model, _, cal = trained_world 44 in
        let triples =
          Array.to_list
            (Array.mapi (fun i x -> (x, cal.y.(i), model.Model.predict_proba x)) cal.x)
        in
        let svc = Service.create triples in
        let rng = Rng.create 45 in
        let queries =
          Array.init 11 (fun _ ->
              let x =
                [| Rng.gaussian rng ~mu:0.0 ~sigma:2.0; Rng.gaussian rng ~mu:0.0 ~sigma:2.0 |]
              in
              (x, model.Model.predict_proba x))
        in
        let singles =
          Array.map
            (fun (x, p) -> Service.should_accept svc ~features:x ~proba:p)
            queries
        in
        with_pool 2 (fun pool ->
            Alcotest.(check (array bool)) "accepts" singles
              (Service.should_accept_batch ~pool svc queries)));
    Alcotest.test_case "select_packed matches select_subset" `Quick (fun () ->
        let model, _, cal = trained_world 46 in
        let c =
          Calibration.prepare_classification ~config:Config.default ~model
            ~feature_of:Fun.id cal
        in
        let config = { Config.default with Config.select_all_below = 4 } in
        let test = Calibration.standardize_cls c [| 1.0; 4.0 |] in
        (* materialize the record form first: the packed view aliases
           per-domain buffers that the next selection overwrites *)
        let selected =
          Calibration.select_subset ~tau:c.Calibration.tau
            ~featmat:c.Calibration.feat_matrix ~config c.Calibration.entries
            ~feature_of_entry:(fun e -> e.Calibration.features)
            test
        in
        let sel =
          Calibration.select_packed ~tau:c.Calibration.tau
            ~featmat:c.Calibration.feat_matrix ~config c.Calibration.entries
            ~feature_of_entry:(fun e -> e.Calibration.features)
            test
        in
        Alcotest.(check int) "count" (Array.length selected) sel.Calibration.sel_count;
        Array.iteri
          (fun r { Calibration.index; weight; _ } ->
            Alcotest.(check int) "index" index sel.Calibration.sel_idxs.(r);
            Alcotest.(check (float 0.0)) "weight" weight sel.Calibration.sel_weights.(r))
          selected);
    Alcotest.test_case "classification_all_table equals the reference pair" `Quick
      (fun () ->
        let model, _, cal = trained_world 47 in
        let c =
          Calibration.prepare_classification ~config:Config.default ~model
            ~feature_of:Fun.id cal
        in
        let entries = c.Calibration.entries in
        let test = Calibration.standardize_cls c [| 3.0; 2.0 |] in
        let proba = [| 0.45; 0.55 |] in
        let selected =
          Calibration.select_subset ~tau:c.Calibration.tau
            ~featmat:c.Calibration.feat_matrix ~config:Config.default entries
            ~feature_of_entry:(fun e -> e.Calibration.features)
            test
        in
        let selection =
          Calibration.select_packed ~tau:c.Calibration.tau
            ~featmat:c.Calibration.feat_matrix ~config:Config.default entries
            ~feature_of_entry:(fun e -> e.Calibration.features)
            test
        in
        let entry_labels = Array.map (fun e -> e.Calibration.label) entries in
        List.iter
          (fun fn ->
            let entry_scores =
              Array.map
                (fun e ->
                  fn.Nonconformity.cls_score ~proba:e.Calibration.proba
                    ~label:e.Calibration.label)
                entries
            in
            let test_scores =
              Array.init 2 (fun label -> fn.Nonconformity.cls_score ~proba ~label)
            in
            let smoothed, raw =
              Pvalue.classification_all_table ~entry_scores ~entry_labels ~selection
                ~test_scores ~n_classes:2 ()
            in
            Alcotest.(check (array (float 0.0)))
              "smoothed"
              (Pvalue.classification_all ~fn ~selected ~proba ~n_classes:2 ())
              smoothed;
            Alcotest.(check (array (float 0.0)))
              "raw"
              (Pvalue.classification_all ~smooth:false ~fn ~selected ~proba ~n_classes:2
                 ())
              raw)
          Nonconformity.default_committee);
  ]

(* --- Shared-scan pipeline: the detectors now derive every per-query
   statistic from one distance buffer. These tests rebuild each verdict
   from the independent per-concern scans (each public API walking the
   matrix itself) and demand *bit-identical* results. *)

(* Independent-scan classification verdict, assembled exactly as the
   pre-pipeline evaluate did: its own selection scan, its own conformal
   distance scan. *)
let reference_cls_verdict ~config ~model (c : Calibration.cls) x =
  let proba = model.Model.predict_proba x in
  let predicted = Vec.argmax proba in
  let feats = Calibration.standardize_cls c x in
  let selection =
    Calibration.select_packed ~tau:c.Calibration.tau ~featmat:c.Calibration.feat_matrix
      ~config c.Calibration.entries
      ~feature_of_entry:(fun e -> e.Calibration.features)
      feats
  in
  let distance_pvalue = Calibration.distance_pvalue_cls c feats in
  let entry_labels = Array.map (fun e -> e.Calibration.label) c.Calibration.entries in
  let experts =
    List.map
      (fun fn ->
        let entry_scores =
          Array.map
            (fun e ->
              fn.Nonconformity.cls_score ~proba:e.Calibration.proba
                ~label:e.Calibration.label)
            c.Calibration.entries
        in
        let test_scores =
          Array.init 2 (fun label -> fn.Nonconformity.cls_score ~proba ~label)
        in
        let pvalues, set_pvalues =
          Pvalue.classification_all_table ~entry_scores ~entry_labels ~selection
            ~test_scores ~n_classes:2 ()
        in
        Scores.expert_verdict ~distance_pvalue ~set_pvalues
          ~discrete:fn.Nonconformity.cls_discrete ~config ~expert:fn.Nonconformity.cls_name
          ~pvalues ~predicted ())
      Nonconformity.default_committee
  in
  {
    Detector.predicted;
    proba;
    experts;
    drifted = Scores.committee_decision ~config experts;
    mean_credibility =
      Stats.mean (Array.of_list (List.map (fun v -> v.Scores.credibility) experts));
    mean_confidence =
      Stats.mean (Array.of_list (List.map (fun v -> v.Scores.confidence) experts));
  }

(* Regression analogue: four independent scans (kNN truth, cluster
   argmin, selection, conformal distance), as the pre-pipeline evaluate
   performed them. *)
let reference_reg_verdict ~config ~model (c : Calibration.reg) x =
  let predicted_value = model.Model.predict x in
  let feats = Calibration.standardize_reg c x in
  let knn_estimate, knn_spread = Calibration.knn_truth c feats ~k:config.Config.knn_k in
  let cluster = Calibration.assign_cluster c feats in
  let selection =
    Calibration.select_packed ~tau:c.Calibration.rtau ~featmat:c.Calibration.rfeat_matrix
      ~config c.Calibration.rentries
      ~feature_of_entry:(fun e -> e.Calibration.rfeatures)
      feats
  in
  let distance_pvalue = Calibration.distance_pvalue_reg c feats in
  let entry_clusters =
    Array.map (fun e -> e.Calibration.cluster) c.Calibration.rentries
  in
  let reg_experts =
    List.map
      (fun fn ->
        let entry_scores =
          Array.map
            (fun e ->
              fn.Nonconformity.reg_score ~pred:e.Calibration.rpred
                ~truth:e.Calibration.rproxy
                ~spread:(Stdlib.max e.Calibration.rspread 1e-6))
            c.Calibration.rentries
        in
        let test_score =
          fn.Nonconformity.reg_score ~pred:predicted_value ~truth:knn_estimate
            ~spread:(Stdlib.max knn_spread 1e-6)
        in
        let pvalues, set_pvalues =
          Pvalue.regression_all_table ~entry_scores ~entry_clusters ~selection
            ~n_clusters:c.Calibration.n_clusters ~test_score ()
        in
        Scores.expert_verdict ~distance_pvalue ~set_pvalues ~use_confidence:false ~config
          ~expert:fn.Nonconformity.reg_name ~pvalues ~predicted:cluster ())
      Nonconformity.default_reg_committee
  in
  {
    Detector.predicted_value;
    cluster;
    knn_estimate;
    reg_experts;
    reg_drifted = Scores.committee_decision ~config reg_experts;
    reg_mean_credibility =
      Stats.mean (Array.of_list (List.map (fun v -> v.Scores.credibility) reg_experts));
    reg_mean_confidence =
      Stats.mean (Array.of_list (List.map (fun v -> v.Scores.confidence) reg_experts));
  }

let shared_scan_tests =
  [
    Alcotest.test_case "classification verdicts equal the independent-scan reference"
      `Quick (fun () ->
        let model, _, cal = trained_world 90 in
        let det = Detector.Classification.create ~model ~feature_of:Fun.id cal in
        let c =
          Calibration.prepare_classification ~config:Config.default ~model
            ~feature_of:Fun.id cal
        in
        let rng = Rng.create 91 in
        let queries =
          Array.init 20 (fun _ ->
              [| Rng.gaussian rng ~mu:2.5 ~sigma:3.0; Rng.gaussian rng ~mu:2.5 ~sigma:3.0 |])
        in
        Array.iter
          (fun x ->
            let expect = reference_cls_verdict ~config:Config.default ~model c x in
            Alcotest.(check bool) "sequential bit-identical" true
              (Detector.Classification.evaluate det x = expect))
          queries;
        let expect =
          Array.map (reference_cls_verdict ~config:Config.default ~model c) queries
        in
        Alcotest.(check bool) "batched bit-identical" true
          (Detector.Classification.evaluate_batch det queries = expect);
        with_pool 2 (fun pool ->
            Alcotest.(check bool) "pooled batch bit-identical" true
              (Detector.Classification.evaluate_batch ~pool det queries = expect)))
    ;
    Alcotest.test_case "regression verdicts equal the independent-scan reference" `Quick
      (fun () ->
        let data = reg_world 92 90 in
        let model = Linreg.train data in
        let det =
          Detector.Regression.create ~n_clusters:2 ~model ~feature_of:Fun.id ~seed:1 data
        in
        let c =
          Calibration.prepare_regression ~n_clusters:2 ~config:Config.default ~model
            ~feature_of:Fun.id ~seed:1 data
        in
        let rng = Rng.create 93 in
        (* 13 queries: not a multiple of the batch tile, so the ragged
           final tile is exercised too *)
        let queries =
          Array.init 13 (fun _ -> [| Rng.uniform rng ~lo:(-1.0) ~hi:2.0 |])
        in
        Array.iter
          (fun x ->
            let expect = reference_reg_verdict ~config:Config.default ~model c x in
            Alcotest.(check bool) "sequential bit-identical" true
              (Detector.Regression.evaluate det x = expect))
          queries;
        let expect =
          Array.map (reference_reg_verdict ~config:Config.default ~model c) queries
        in
        Alcotest.(check bool) "batched bit-identical" true
          (Detector.Regression.evaluate_batch det queries = expect));
    Alcotest.test_case "dists consumers equal their independent-scan forms" `Quick
      (fun () ->
        let data = reg_world 94 80 in
        let model = Linreg.train data in
        let c =
          Calibration.prepare_regression ~n_clusters:2 ~config:Config.default ~model
            ~feature_of:Fun.id ~seed:1 data
        in
        let config = Config.default in
        let rng = Rng.create 95 in
        for _ = 1 to 10 do
          let feats =
            Calibration.standardize_reg c [| Rng.uniform rng ~lo:(-1.0) ~hi:2.0 |]
          in
          (* independent scans first; materialize the packed view before
             the dists selection reuses the same per-domain buffers *)
          let sel =
            Calibration.select_packed ~tau:c.Calibration.rtau
              ~featmat:c.Calibration.rfeat_matrix ~config c.Calibration.rentries
              ~feature_of_entry:(fun e -> e.Calibration.rfeatures)
              feats
          in
          let expect_idxs = Array.sub sel.Calibration.sel_idxs 0 sel.Calibration.sel_count in
          let expect_weights =
            Array.sub sel.Calibration.sel_weights 0 sel.Calibration.sel_count
          in
          let expect_truth = Calibration.knn_truth c feats ~k:config.Config.knn_k in
          let expect_cluster = Calibration.assign_cluster c feats in
          let expect_pvalue = Calibration.distance_pvalue_reg c feats in
          let d = Calibration.query_distances_reg c feats in
          Alcotest.(check bool) "knn_truth" true
            (Calibration.knn_truth_dists c d ~k:config.Config.knn_k = expect_truth);
          Alcotest.(check int) "cluster" expect_cluster
            (Calibration.assign_cluster_dists c d);
          Alcotest.(check (float 0.0)) "distance p-value" expect_pvalue
            (Calibration.distance_pvalue_reg_dists c d);
          let sel' = Calibration.select_packed_dists ~tau:c.Calibration.rtau ~config d in
          Alcotest.(check int) "count" (Array.length expect_idxs)
            sel'.Calibration.sel_count;
          Alcotest.(check (array int)) "indices" expect_idxs
            (Array.sub sel'.Calibration.sel_idxs 0 sel'.Calibration.sel_count);
          Alcotest.(check (array (float 0.0))) "weights" expect_weights
            (Array.sub sel'.Calibration.sel_weights 0 sel'.Calibration.sel_count)
        done);
    Alcotest.test_case "interval matches the tuple-sort reference" `Quick (fun () ->
        let data = reg_world 96 90 in
        let model = Linreg.train data in
        let det =
          Detector.Regression.create ~n_clusters:2 ~model ~feature_of:Fun.id ~seed:1 data
        in
        let c =
          Calibration.prepare_regression ~n_clusters:2 ~config:Config.default ~model
            ~feature_of:Fun.id ~seed:1 data
        in
        let rng = Rng.create 97 in
        for _ = 1 to 10 do
          let x = [| Rng.uniform rng ~lo:(-1.0) ~hi:2.0 |] in
          let predicted_value = model.Model.predict x in
          let feats = Calibration.standardize_reg c x in
          let selected =
            Calibration.select_subset ~tau:c.Calibration.rtau
              ~featmat:c.Calibration.rfeat_matrix ~config:Config.default
              c.Calibration.rentries
              ~feature_of_entry:(fun e -> e.Calibration.rfeatures)
              feats
          in
          let scored =
            Array.map
              (fun { Calibration.entry; weight; _ } ->
                (abs_float (entry.Calibration.rpred -. entry.Calibration.target), weight))
              selected
          in
          Array.sort (fun (a, _) (b, _) -> Float.compare a b) scored;
          let total = Array.fold_left (fun acc (_, w) -> acc +. w) 0.0 scored in
          let target_mass = (1.0 -. Config.default.Config.epsilon) *. (total +. 1.0) in
          let q =
            let acc = ref 0.0 and res = ref nan in
            Array.iter
              (fun (r, w) ->
                if Float.is_nan !res then begin
                  acc := !acc +. w;
                  if !acc >= target_mass then res := r
                end)
              scored;
            if Float.is_nan !res then
              match Array.length scored with 0 -> 0.0 | n -> fst scored.(n - 1)
            else !res
          in
          let lo, hi = Detector.Regression.interval det x in
          (* the quantile workspace sums tied residuals' weights in
             (residual, position) order, which the tuple sort leaves
             unspecified — equality is up to summation order, not bits *)
          Alcotest.(check (float 1e-9)) "lo" (predicted_value -. q) lo;
          Alcotest.(check (float 1e-9)) "hi" (predicted_value +. q) hi
        done);
  ]

(* Property: pooled batches of random queries match the sequential map
   exactly, for both detector kinds. *)
let batch_world =
  lazy
    (let model, _, cal = trained_world 48 in
     let cls = Detector.Classification.create ~model ~feature_of:Fun.id cal in
     let data = reg_world 49 80 in
     let reg =
       Detector.Regression.create ~n_clusters:2 ~model:(Linreg.train data)
         ~feature_of:Fun.id ~seed:1 data
     in
     (cls, reg))

let gen_queries dim =
  QCheck2.Gen.(
    array_size (int_range 0 12)
      (array_size (return dim) (float_range (-10.0) 10.0)))

let prop_cls_batch_equiv =
  QCheck2.Test.make ~name:"classification evaluate_batch equals mapped evaluate"
    ~count:30 (gen_queries 2) (fun queries ->
      let cls, _ = Lazy.force batch_world in
      with_pool 2 (fun pool ->
          Detector.Classification.evaluate_batch ~pool cls queries
          = Array.map (Detector.Classification.evaluate cls) queries))

let prop_reg_batch_equiv =
  QCheck2.Test.make ~name:"regression evaluate_batch equals mapped evaluate" ~count:30
    (gen_queries 1) (fun queries ->
      let _, reg = Lazy.force batch_world in
      with_pool 2 (fun pool ->
          Detector.Regression.evaluate_batch ~pool reg queries
          = Array.map (Detector.Regression.evaluate reg) queries))

(* Conformal validity property: for an exchangeable calibration/test
   split, the credibility-only detector's false-flag rate stays near
   epsilon. *)
let prop_validity =
  QCheck2.Test.make ~name:"credibility-only false-flag rate ~ epsilon" ~count:5
    (QCheck2.Gen.int_range 100 10_000)
    (fun seed ->
      let model, _, cal = trained_world seed in
      let config =
        { Config.default with Config.decision_rule = Config.Credibility_only }
      in
      let det = Detector.Classification.create ~config ~model ~feature_of:Fun.id cal in
      let test = blob_dataset (seed + 1) 60 in
      let flags =
        Array.fold_left
          (fun acc x -> if snd (Detector.Classification.predict det x) then acc + 1 else acc)
          0 test.x
      in
      (* epsilon = 0.1; allow generous sampling noise *)
      float_of_int flags /. 60.0 < 0.35)

(* Random calibration worlds for structural p-value properties. *)
let gen_selected =
  QCheck2.Gen.(
    list_size (int_range 1 30)
      (pair (int_range 0 2) (float_range 0.05 0.95))
    >|= fun entries ->
    Array.of_list
      (List.mapi
         (fun i (label, p0) ->
           let rest = (1.0 -. p0) /. 2.0 in
           {
             Calibration.index = i;
             entry =
               {
                 Calibration.features = [| p0 |];
                 label;
                 proba = [| p0; rest; rest |];
               };
             weight = 1.0;
             distance = 0.0;
           })
         entries))

let prop_pvalues_in_range =
  QCheck2.Test.make ~name:"p-values stay in [0,1] for every function and label"
    ~count:100
    QCheck2.Gen.(pair gen_selected (float_range 0.01 0.99))
    (fun (selected, p0) ->
      let rest = (1.0 -. p0) /. 2.0 in
      let proba = [| p0; rest; rest |] in
      List.for_all
        (fun fn ->
          Array.for_all
            (fun p -> p >= 0.0 && p <= 1.0)
            (Pvalue.classification_all ~fn ~selected ~proba ~n_classes:3 ()))
        Nonconformity.extended_committee)

let prop_raw_below_smoothed_support =
  QCheck2.Test.make ~name:"raw p-value never exceeds the smoothed one" ~count:100
    QCheck2.Gen.(pair gen_selected (float_range 0.01 0.99))
    (fun (selected, p0) ->
      let rest = (1.0 -. p0) /. 2.0 in
      let proba = [| p0; rest; rest |] in
      List.for_all
        (fun label ->
          let smoothed =
            Pvalue.classification ~fn:Nonconformity.lac ~selected ~proba ~label ()
          in
          let raw =
            Pvalue.classification ~smooth:false ~fn:Nonconformity.lac ~selected ~proba
              ~label ()
          in
          raw <= smoothed +. 1e-12)
        [ 0; 1; 2 ])

let prop_set_monotone_in_epsilon =
  QCheck2.Test.make ~name:"prediction sets shrink as epsilon grows" ~count:100
    (QCheck2.Gen.array_size (QCheck2.Gen.int_range 2 8)
       (QCheck2.Gen.float_range 0.0 1.0))
    (fun pvalues ->
      let size eps = List.length (Scores.prediction_set ~epsilon:eps pvalues) in
      size 0.05 >= size 0.2 && size 0.2 >= size 0.5)

let prop_confidence_bounded =
  QCheck2.Test.make ~name:"confidence lies in [0,1] and peaks at size 1" ~count:100
    QCheck2.Gen.(pair (float_range 0.2 5.0) (int_range 0 20))
    (fun (c, set_size) ->
      (* huge sets with tiny scales underflow to exactly 0, which is fine *)
      let v = Scores.confidence ~c ~set_size in
      v >= 0.0 && v <= 1.0 && v <= Scores.confidence ~c ~set_size:1)

let prop_distance_pvalue_monotone =
  QCheck2.Test.make ~name:"distance p-value decreases as the query moves away"
    ~count:20
    (QCheck2.Gen.int_range 0 1000)
    (fun seed ->
      let model, _, cal = trained_world (10_000 + seed) in
      let c =
        Calibration.prepare_classification ~config:Config.default ~model
          ~feature_of:Fun.id cal
      in
      let p_of x =
        Calibration.distance_pvalue_cls c (Calibration.standardize_cls c [| x; x |])
      in
      (* distances grow monotonically along the diagonal away from the
         blobs at (0,0) and (5,5) *)
      p_of 20.0 >= p_of 40.0 && p_of 40.0 >= p_of 120.0)

(* Property: the Eq. 1 selection weights exp(-d^2 / tau) stay finite and
   in [0,1] for any positive tau and any query location — the guard in
   [Calibration.resolve_tau] makes non-positive tau unreachable. *)
let tau_world =
  lazy
    (let model, _, cal = trained_world 51 in
     Calibration.prepare_classification ~config:Config.default ~model
       ~feature_of:Fun.id cal)

let prop_weights_finite =
  QCheck2.Test.make ~name:"selection weights are finite and in [0,1] for positive tau"
    ~count:100
    QCheck2.Gen.(
      triple (float_range 1e-6 1e6) (float_range (-20.0) 20.0)
        (float_range (-20.0) 20.0))
    (fun (tau, x, y) ->
      let c = Lazy.force tau_world in
      let test = Calibration.standardize_cls c [| x; y |] in
      let selected =
        Calibration.select_subset ~tau ~featmat:c.Calibration.feat_matrix
          ~config:Config.default c.Calibration.entries
          ~feature_of_entry:(fun e -> e.Calibration.features)
          test
      in
      Array.for_all
        (fun s ->
          let w = s.Calibration.weight in
          Float.is_finite w && w >= 0.0 && w <= 1.0)
        selected)

(* Regression tests for the hot-path fixes shipped with the
   observability layer. *)
let regression_tests =
  [
    Alcotest.test_case "monitor escalation is independent of window alignment" `Quick
      (fun () ->
        (* aligned: drift from the very first observation. The streak of
           full-drift windows starts at observation 4 and reaches
           patience * window = 8 persistent samples at observation 8. *)
        let aligned = Monitor.create ~window:4 ~threshold:1.0 ~patience:2 () in
        for _ = 1 to 7 do
          ignore (Monitor.observe aligned ~drifted:true)
        done;
        Alcotest.(check bool) "aligned not ageing before 2w" true
          (Monitor.status aligned <> Monitor.Ageing);
        Alcotest.(check string) "aligned ageing at 2w" "ageing"
          (Monitor.status_to_string (Monitor.observe aligned ~drifted:true));
        (* offset: two clean samples push the burst out of phase with the
           window boundary. The old [total mod window = 0] counter only
           fired at totals 8 and 12 (ageing at 12); the alignment-free
           streak escalates at total 10 — the same 8 persistent drift
           samples as the aligned case. *)
        let offset = Monitor.create ~window:4 ~threshold:1.0 ~patience:2 () in
        ignore (Monitor.observe offset ~drifted:false);
        ignore (Monitor.observe offset ~drifted:false);
        for _ = 1 to 7 do
          Alcotest.(check bool) "offset not ageing yet" true
            (Monitor.observe offset ~drifted:true <> Monitor.Ageing)
        done;
        Alcotest.(check string) "offset ageing after patience*window drift" "ageing"
          (Monitor.status_to_string (Monitor.observe offset ~drifted:true)));
    Alcotest.test_case "batch with value-colliding features matches singles" `Quick
      (fun () ->
        let model, _, cal = trained_world 86 in
        let triples =
          Array.to_list
            (Array.mapi (fun i x -> (x, cal.y.(i), model.Model.predict_proba x)) cal.x)
        in
        let svc = Service.create triples in
        (* two physically distinct, value-equal feature vectors carrying
           different probability vectors: the batch path must evaluate
           each against its own proba, like the single-query path *)
        let shared = [| 0.3; 0.4 |] in
        let queries =
          [|
            (Array.copy shared, [| 0.95; 0.05 |]);
            (Array.copy shared, [| 0.05; 0.95 |]);
            ([| 1.0; 2.0 |], [| 0.6; 0.4 |]);
          |]
        in
        with_pool 2 (fun pool ->
            let batch = Service.evaluate_batch ~pool svc queries in
            let singles =
              Array.map (fun q -> (Service.evaluate_batch svc [| q |]).(0)) queries
            in
            Alcotest.(check bool) "bit-identical to singles" true (batch = singles);
            Alcotest.(check bool) "colliding queries kept distinct" true
              (batch.(0) <> batch.(1));
            Alcotest.(check (array bool))
              "should_accept_batch agrees"
              (Array.map
                 (fun (f, p) -> Service.should_accept svc ~features:f ~proba:p)
                 queries)
              (Service.should_accept_batch ~pool svc queries)));
    Alcotest.test_case "select rejects non-positive tau" `Quick (fun () ->
        let c = Lazy.force tau_world in
        let test = Calibration.standardize_cls c [| 1.0; 1.0 |] in
        List.iter
          (fun tau ->
            Alcotest.check_raises "positive tau required"
              (Invalid_argument "Calibration.select: tau must be positive") (fun () ->
                ignore
                  (Calibration.select_subset ~tau ~featmat:c.Calibration.feat_matrix
                     ~config:Config.default c.Calibration.entries
                     ~feature_of_entry:(fun e -> e.Calibration.features)
                     test)))
          [ 0.0; -1.0; Float.nan ]);
  ]

(* End-to-end checks for the telemetry wiring: counters must balance,
   and instrumentation must never change a verdict. *)
let telemetry_tests =
  [
    Alcotest.test_case "queries_total = accepted + rejected after a mixed batch" `Quick
      (fun () ->
        let model, _, cal = trained_world 33 in
        let tel = Telemetry.create (Prom_obs.create_registry ()) in
        let det =
          Detector.Classification.create ~model ~feature_of:Fun.id ~telemetry:tel cal
        in
        (* mixed stream: in-distribution blob points plus far outliers *)
        let queries =
          Array.append (blob_dataset 34 20).x
            (Array.init 10 (fun i -> [| 40.0 +. float_of_int i; -30.0 |]))
        in
        with_pool 2 (fun pool ->
            ignore (Detector.Classification.evaluate_batch ~pool det queries));
        let q = Prom_obs.Counter.value tel.Telemetry.queries_total in
        let a = Prom_obs.Counter.value tel.Telemetry.accepted_total in
        let r = Prom_obs.Counter.value tel.Telemetry.rejected_total in
        Alcotest.(check (float 0.0)) "every query counted"
          (float_of_int (Array.length queries)) q;
        Alcotest.(check (float 0.0)) "conservation" q (a +. r);
        Alcotest.(check (float 0.0)) "one latency observation per query" q
          (Prom_obs.Histogram.count tel.Telemetry.eval_latency);
        Alcotest.(check bool) "outliers rejected" true (r > 0.0);
        let text = Telemetry.exposition tel in
        (match Prom_obs.validate_exposition text with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
        List.iter
          (fun name ->
            Alcotest.(check bool) name true
              (let nh = String.length text and nn = String.length name in
               let rec go i =
                 i + nn <= nh && (String.sub text i nn = name || go (i + 1))
               in
               go 0))
          [
            "prom_queries_total"; "prom_rejected_total"; "prom_eval_latency_seconds";
            "prom_monitor_drift_rate"; "prom_kernel_backend";
          ]);
    Alcotest.test_case "instrumented evaluation is bit-identical" `Quick (fun () ->
        let model, _, cal = trained_world 35 in
        let plain = Detector.Classification.create ~model ~feature_of:Fun.id cal in
        let tel = Telemetry.create (Prom_obs.create_registry ()) in
        let inst =
          Detector.Classification.create ~model ~feature_of:Fun.id ~telemetry:tel cal
        in
        let queries = (blob_dataset 36 25).x in
        Alcotest.(check bool) "same verdicts" true
          (Array.map (Detector.Classification.evaluate plain) queries
          = Array.map (Detector.Classification.evaluate inst) queries));
    Alcotest.test_case "service batch telemetry counts sizes and collisions" `Quick
      (fun () ->
        let model, _, cal = trained_world 37 in
        let triples =
          Array.to_list
            (Array.mapi (fun i x -> (x, cal.y.(i), model.Model.predict_proba x)) cal.x)
        in
        let tel = Telemetry.create (Prom_obs.create_registry ()) in
        let svc = Service.create ~telemetry:tel triples in
        let shared = [| 0.25; 0.5 |] in
        let queries =
          [|
            (Array.copy shared, [| 0.9; 0.1 |]);
            (Array.copy shared, [| 0.2; 0.8 |]);
            ([| 1.0; 2.0 |], [| 0.6; 0.4 |]);
          |]
        in
        ignore (Service.evaluate_batch svc queries);
        Alcotest.(check (float 0.0)) "one collision" 1.0
          (Prom_obs.Counter.value tel.Telemetry.collision_rebinds);
        Alcotest.(check (float 0.0)) "one batch observed" 1.0
          (Prom_obs.Histogram.count tel.Telemetry.batch_size);
        Alcotest.(check (float 0.0)) "batch size summed" 3.0
          (Prom_obs.Histogram.sum tel.Telemetry.batch_size));
    Alcotest.test_case "monitor telemetry tracks status and transitions" `Quick
      (fun () ->
        let tel = Telemetry.create (Prom_obs.create_registry ()) in
        let m = Monitor.create ~window:4 ~threshold:0.5 ~patience:2 ~telemetry:tel () in
        for _ = 1 to 4 do
          ignore (Monitor.observe m ~drifted:true)
        done;
        Alcotest.(check (float 0.0)) "drift rate gauge" 1.0
          (Prom_obs.Gauge.value tel.Telemetry.drift_rate);
        Alcotest.(check (float 0.0)) "status gauge degrading" 1.0
          (Prom_obs.Gauge.value tel.Telemetry.monitor_status);
        Alcotest.(check bool) "transition counted" true
          (Prom_obs.Counter.value tel.Telemetry.status_transitions >= 1.0);
        Monitor.reset m;
        Alcotest.(check (float 0.0)) "reset clears the gauges" 0.0
          (Prom_obs.Gauge.value tel.Telemetry.monitor_status));
  ]

(* --- Pruned-index end-to-end parity. ---

   Twin detectors built from the same data under opposite indexing
   policies (PROM_INDEX_MIN_N forced low / high): the indexed store
   must answer every query — sequentially, batched, after incremental
   admits and through the incremental-learning loop — bit-identically
   to the dense-scan store. *)

let with_index_threshold v f =
  Unix.putenv Calibration.index_threshold_env v;
  Fun.protect ~finally:(fun () -> Unix.putenv Calibration.index_threshold_env "") f

(* Selection lean enough that the index gate (4 * query_k <= n) opens
   at a few hundred calibration entries. *)
let index_config =
  { Config.default with Config.select_ratio = 0.05; select_all_below = 32 }

let assert_indexing det_scan det_ix ~cal_of ~index_of =
  Alcotest.(check bool) "scan twin unindexed" true
    (Option.is_none (index_of (cal_of det_scan)));
  Alcotest.(check bool) "index twin indexed" true
    (Option.is_some (index_of (cal_of det_ix)))

let index_cls_twins seed =
  let data = blob_dataset seed 760 in
  let train, cal = Framework.data_partitioning ~calibration_ratio:0.4 ~seed data in
  let model = Logistic.train train in
  let mk threshold =
    with_index_threshold threshold (fun () ->
        Detector.Classification.create ~config:index_config ~model ~feature_of:Fun.id
          cal)
  in
  let det_scan = mk "1000000000" and det_ix = mk "1" in
  assert_indexing det_scan det_ix ~cal_of:Detector.Classification.calibration
    ~index_of:Calibration.index_of_cls;
  (model, train, det_scan, det_ix)

let index_cls_queries seed n =
  let rng = Rng.create seed in
  Array.init n (fun i ->
      let c = if i mod 3 = 0 then 8.0 else 2.5 in
      [| Rng.gaussian rng ~mu:c ~sigma:3.0; Rng.gaussian rng ~mu:c ~sigma:3.0 |])

let index_reg_twins seed =
  let data = reg_world seed 420 in
  let model = Linreg.train data in
  let mk threshold =
    with_index_threshold threshold (fun () ->
        Detector.Regression.create ~config:index_config ~n_clusters:2 ~model
          ~feature_of:Fun.id ~seed data)
  in
  let det_scan = mk "1000000000" and det_ix = mk "1" in
  assert_indexing det_scan det_ix ~cal_of:Detector.Regression.calibration
    ~index_of:Calibration.index_of_reg;
  (det_scan, det_ix)

let index_e2e_tests =
  [
    Alcotest.test_case "classification verdicts identical scan vs index" `Quick
      (fun () ->
        let _, _, det_scan, det_ix = index_cls_twins 70 in
        let queries = index_cls_queries 71 23 in
        let scan = Array.map (Detector.Classification.evaluate det_scan) queries in
        Alcotest.(check bool) "sequential identical" true
          (Array.map (Detector.Classification.evaluate det_ix) queries = scan);
        Alcotest.(check bool) "batched identical" true
          (Detector.Classification.evaluate_batch det_ix queries = scan));
    Alcotest.test_case "regression verdicts identical scan vs index" `Quick (fun () ->
        let det_scan, det_ix = index_reg_twins 72 in
        let rng = Rng.create 73 in
        let queries =
          Array.init 19 (fun _ -> [| Rng.uniform rng ~lo:(-0.5) ~hi:1.5 |])
        in
        let scan = Array.map (Detector.Regression.evaluate det_scan) queries in
        Alcotest.(check bool) "sequential identical" true
          (Array.map (Detector.Regression.evaluate det_ix) queries = scan);
        Alcotest.(check bool) "batched identical" true
          (Detector.Regression.evaluate_batch det_ix queries = scan));
    Alcotest.test_case "admit grows the index in place and keeps parity" `Quick
      (fun () ->
        let _, _, det_scan, det_ix = index_cls_twins 74 in
        let n0 =
          Array.length
            (Detector.Classification.calibration det_ix).Calibration.entries
        in
        let rng = Rng.create 75 in
        let labeled =
          Array.init 15 (fun _ ->
              ( [| Rng.gaussian rng ~mu:9.0 ~sigma:0.4;
                   Rng.gaussian rng ~mu:9.0 ~sigma:0.4 |],
                1 ))
        in
        let det_scan' = Detector.Classification.admit det_scan labeled in
        let det_ix' = Detector.Classification.admit det_ix labeled in
        (match
           Calibration.index_of_cls (Detector.Classification.calibration det_ix')
         with
        | None -> Alcotest.fail "index lost across admit"
        | Some knn ->
            Alcotest.(check int) "index covers the grown store" (n0 + 15)
              (Knn_index.length knn);
            Alcotest.(check int) "batched insert, no rebuild" 15
              (Knn_index.inserted_since_build knn));
        let queries =
          Array.append (index_cls_queries 76 12)
            (Array.map fst (Array.sub labeled 0 5))
        in
        Alcotest.(check bool) "grown verdicts identical" true
          (Array.map (Detector.Classification.evaluate det_ix') queries
          = Array.map (Detector.Classification.evaluate det_scan') queries);
        Alcotest.check_raises "label range checked"
          (Invalid_argument "Detector.Classification.admit: label out of range")
          (fun () ->
            ignore (Detector.Classification.admit det_ix [| ([| 0.0; 0.0 |], 7) |])));
    Alcotest.test_case "regression admit keeps parity" `Quick (fun () ->
        let det_scan, det_ix = index_reg_twins 77 in
        let rng = Rng.create 78 in
        let samples =
          Array.init 10 (fun _ ->
              let x = Rng.uniform rng ~lo:1.2 ~hi:1.6 in
              ([| x |], 2.0 *. x))
        in
        let det_scan' = Detector.Regression.admit det_scan samples in
        let det_ix' = Detector.Regression.admit det_ix samples in
        Alcotest.(check bool) "still indexed" true
          (Option.is_some
             (Calibration.index_of_reg (Detector.Regression.calibration det_ix')));
        let queries =
          Array.init 11 (fun _ -> [| Rng.uniform rng ~lo:(-0.2) ~hi:1.8 |])
        in
        Alcotest.(check bool) "grown verdicts identical" true
          (Array.map (Detector.Regression.evaluate det_ix') queries
          = Array.map (Detector.Regression.evaluate det_scan') queries));
    Alcotest.test_case "incremental admitting loop matches on both twins" `Quick
      (fun () ->
        let _, train, det_scan, det_ix = index_cls_twins 79 in
        let rng = Rng.create 80 in
        let inputs =
          Array.init 30 (fun _ ->
              [| Rng.gaussian rng ~mu:12.0 ~sigma:0.4;
                 Rng.gaussian rng ~mu:12.0 ~sigma:0.4 |])
        in
        let run det =
          Incremental.classification_admitting ~budget_fraction:0.3 ~detector:det
            ~trainer:(Logistic.trainer ()) ~train_data:train ~oracle:(fun _ -> 1)
            inputs
        in
        let outcome_scan, det_scan' = run det_scan in
        let outcome_ix, det_ix' = run det_ix in
        Alcotest.(check bool) "same flags" true
          (outcome_scan.Incremental.flagged_indices
          = outcome_ix.Incremental.flagged_indices);
        Alcotest.(check bool) "same relabels" true
          (outcome_scan.Incremental.relabeled_indices
          = outcome_ix.Incremental.relabeled_indices);
        let relabeled = List.length outcome_ix.Incremental.relabeled_indices in
        Alcotest.(check bool) "something admitted" true (relabeled > 0);
        let entries det =
          Array.length (Detector.Classification.calibration det).Calibration.entries
        in
        Alcotest.(check int) "store grew by the relabeled batch"
          (entries det_ix + relabeled) (entries det_ix');
        let queries = index_cls_queries 81 9 in
        Alcotest.(check bool) "grown verdicts identical" true
          (Array.map (Detector.Classification.evaluate det_ix') queries
          = Array.map (Detector.Classification.evaluate det_scan') queries));
    Alcotest.test_case "incremental admitting regression grows the store" `Quick
      (fun () ->
        let data = reg_world 82 420 in
        let model = Linreg.train data in
        let det =
          with_index_threshold "1" (fun () ->
              Detector.Regression.create ~config:index_config ~n_clusters:2 ~model
                ~feature_of:Fun.id ~seed:82 data)
        in
        let rng = Rng.create 83 in
        let inputs =
          Array.init 24 (fun _ -> [| Rng.uniform rng ~lo:4.0 ~hi:5.0 |])
        in
        let outcome, det' =
          Incremental.regression_admitting ~budget_fraction:0.25 ~detector:det
            ~trainer:(Linreg.trainer ()) ~train_data:data
            ~oracle:(fun x -> 2.0 *. x.(0))
            inputs
        in
        let relabeled = List.length outcome.Incremental.relabeled_indices in
        Alcotest.(check bool) "something admitted" true (relabeled > 0);
        Alcotest.(check int) "store grew by the relabeled batch"
          (Array.length (Detector.Regression.calibration det).Calibration.rentries
          + relabeled)
          (Array.length (Detector.Regression.calibration det').Calibration.rentries));
    Alcotest.test_case "index telemetry reaches the exposition" `Quick (fun () ->
        let data = blob_dataset 84 760 in
        let train, cal = Framework.data_partitioning ~calibration_ratio:0.4 ~seed:84 data in
        let model = Logistic.train train in
        let registry = Prom_obs.create_registry () in
        let tel = Telemetry.create registry in
        let det =
          with_index_threshold "1" (fun () ->
              Detector.Classification.create ~config:index_config ~telemetry:tel
                ~model ~feature_of:Fun.id cal)
        in
        Array.iter
          (fun q -> ignore (Detector.Classification.evaluate det q))
          (index_cls_queries 85 7);
        let text = Prom_obs.Snapshot.to_prometheus (Prom_obs.Snapshot.take registry) in
        let contains needle =
          let nh = String.length text and nn = String.length needle in
          let rec go i = i + nn <= nh && (String.sub text i nn = needle || go (i + 1)) in
          nn = 0 || go 0
        in
        List.iter
          (fun name ->
            Alcotest.(check bool) (Printf.sprintf "exposes %s" name) true
              (contains name))
          [
            "prom_index_clusters";
            "prom_index_candidates_scanned_total";
            "prom_index_pruned_total";
            "prom_index_rebuilds_total";
          ];
        (* [index_metrics] hands back the registry's existing
           instruments, so the evaluation loop's counts are visible. *)
        let m = Telemetry.index_metrics tel in
        Alcotest.(check bool) "clusters gauge set" true
          (Prom_obs.Gauge.value m.Calibration.ix_clusters > 0.0);
        Alcotest.(check bool) "scanned counted" true
          (Prom_obs.Counter.value m.Calibration.ix_scanned > 0.0);
        Alcotest.(check bool) "pruned counted" true
          (Prom_obs.Counter.value m.Calibration.ix_pruned > 0.0));
  ]

(* ---------- Decay policies ---------- *)

let decay_tests =
  [
    Alcotest.test_case "unit policy is weightless at any age" `Quick (fun () ->
        Alcotest.(check (float 0.0)) "flat" 1.0
          (Decay.weight Decay.Unit_weights ~scale:1.0 ~age:1000);
        Alcotest.(check bool) "unit" true (Decay.is_unit Decay.Unit_weights);
        Alcotest.(check bool) "not unit" false
          (Decay.is_unit (Decay.Sliding { window = 4 })));
    Alcotest.test_case "exponential halves at the scaled half-life" `Quick
      (fun () ->
        let p = Decay.Exponential { half_life = 16.0 } in
        Alcotest.(check (float 1e-12)) "age 0" 1.0 (Decay.weight p ~scale:1.0 ~age:0);
        Alcotest.(check (float 1e-12)) "half" 0.5 (Decay.weight p ~scale:1.0 ~age:16);
        (* scale 0.5 halves the horizon: age 16 is now two half-lives *)
        Alcotest.(check (float 1e-12)) "shrunk" 0.25
          (Decay.weight p ~scale:0.5 ~age:16));
    Alcotest.test_case "sliding window cuts off at the scaled horizon" `Quick
      (fun () ->
        let p = Decay.Sliding { window = 10 } in
        Alcotest.(check (float 0.0)) "inside" 1.0 (Decay.weight p ~scale:1.0 ~age:9);
        Alcotest.(check (float 0.0)) "outside" 0.0 (Decay.weight p ~scale:1.0 ~age:10);
        Alcotest.(check (float 0.0)) "shrunk out" 0.0 (Decay.weight p ~scale:0.5 ~age:5);
        Alcotest.(check (float 0.0)) "shrunk in" 1.0 (Decay.weight p ~scale:0.5 ~age:4));
    Alcotest.test_case "degenerate policies rejected" `Quick (fun () ->
        Alcotest.check_raises "half-life"
          (Invalid_argument "Decay: exponential half-life must be positive")
          (fun () -> Decay.validate (Decay.Exponential { half_life = 0.0 }));
        Alcotest.check_raises "window"
          (Invalid_argument "Decay: sliding window must be positive") (fun () ->
            Decay.validate (Decay.Sliding { window = 0 })));
    Alcotest.test_case "weight rejects bad age and scale" `Quick (fun () ->
        Alcotest.check_raises "age" (Invalid_argument "Decay.weight: negative age")
          (fun () -> ignore (Decay.weight Decay.Unit_weights ~scale:1.0 ~age:(-1)));
        Alcotest.check_raises "scale"
          (Invalid_argument "Decay.weight: scale outside (0, 1]") (fun () ->
            ignore (Decay.weight Decay.Unit_weights ~scale:0.0 ~age:3)));
    Alcotest.test_case "spec syntax round-trips" `Quick (fun () ->
        List.iter
          (fun p ->
            match Decay.of_string (Decay.to_string p) with
            | Some p' -> Alcotest.(check bool) (Decay.to_string p) true (p = p')
            | None -> Alcotest.fail ("unparseable: " ^ Decay.to_string p))
          [
            Decay.Unit_weights;
            Decay.Exponential { half_life = 12.5 };
            Decay.Sliding { window = 64 };
          ];
        Alcotest.(check bool) "unit alias" true
          (Decay.of_string "unit" = Some Decay.Unit_weights);
        List.iter
          (fun s ->
            Alcotest.(check bool) ("rejects " ^ s) true (Decay.of_string s = None))
          [ "exp:-1"; "exp:"; "window:0"; "window:x"; "junk"; "" ]);
    Alcotest.test_case "window state validation" `Quick (fun () ->
        let ws =
          {
            Decay.ws_policy = Decay.Sliding { window = 8 };
            ws_capacity = 32;
            ws_compact_fraction = 0.5;
            ws_scale = 1.0;
            ws_seqs = [| 0; 2; 5 |];
            ws_next_seq = 6;
          }
        in
        Decay.validate_window ws;
        Alcotest.check_raises "seq range"
          (Invalid_argument "Decay: entry sequence outside [0, next_seq)") (fun () ->
            Decay.validate_window { ws with Decay.ws_seqs = [| 0; 6 |] });
        Alcotest.check_raises "scale"
          (Invalid_argument "Decay: window scale outside (0, 1]") (fun () ->
            Decay.validate_window { ws with Decay.ws_scale = 1.5 });
        Alcotest.check_raises "fraction"
          (Invalid_argument "Decay: compact fraction outside (0, 1]") (fun () ->
            Decay.validate_window { ws with Decay.ws_compact_fraction = 0.0 }));
  ]

(* ---------- The streaming recalibration loop ---------- *)

let stream_service seed =
  let model, _, cal = trained_world seed in
  let triples =
    Array.to_list
      (Array.mapi (fun i x -> (x, cal.y.(i), model.Model.predict_proba x)) cal.x)
  in
  (model, Service.create triples)

let admit_at stream model rng mu =
  let x =
    [| Rng.gaussian rng ~mu ~sigma:0.4; Rng.gaussian rng ~mu ~sigma:0.4 |]
  in
  Stream.admit stream ~features:x ~label:1 ~proba:(model.Model.predict_proba x)

let stream_tests =
  [
    Alcotest.test_case "unit and all-ones streams serve bit-identical verdicts"
      `Quick (fun () ->
        let model, svc_unit = stream_service 90 in
        let _, svc_ones = stream_service 90 in
        let s_unit =
          Stream.create ~policy:Decay.Unit_weights ~capacity:256 svc_unit
        in
        (* a window far larger than the stream keeps every weight at
           exactly 1.0 — the weighted pipeline over unit weights *)
        let s_ones =
          Stream.create ~policy:(Decay.Sliding { window = 1_000_000 })
            ~capacity:256 svc_ones
        in
        let rng_a = Rng.create 91 and rng_b = Rng.create 91 in
        for _ = 1 to 12 do
          admit_at s_unit model rng_a 3.0;
          admit_at s_ones model rng_b 3.0
        done;
        let queries =
          Array.map (fun x -> (x, model.Model.predict_proba x)) (blob_dataset 92 20).x
        in
        Alcotest.(check bool) "bit-identical" true
          (Service.evaluate_batch (Stream.service s_unit) queries
          = Service.evaluate_batch (Stream.service s_ones) queries);
        let st = Stream.stats s_unit in
        Alcotest.(check int) "one publish per admit" 12 st.Stream.publishes;
        Alcotest.(check int) "weighted stream publishes at create too" 13
          (Stream.stats s_ones).Stream.publishes);
    Alcotest.test_case "admit validates shapes and labels" `Quick (fun () ->
        let model, svc = stream_service 93 in
        let s = Stream.create svc in
        let ok = [| 0.1; 0.2 |] in
        let proba = model.Model.predict_proba ok in
        Alcotest.check_raises "dim"
          (Invalid_argument "Stream.admit: feature dimension mismatch") (fun () ->
            Stream.admit s ~features:[| 0.1 |] ~label:0 ~proba);
        Alcotest.check_raises "proba"
          (Invalid_argument "Stream.admit: probability vector dimension mismatch")
          (fun () -> Stream.admit s ~features:ok ~label:0 ~proba:[| 1.0 |]);
        Alcotest.check_raises "label"
          (Invalid_argument "Stream.admit: label out of range") (fun () ->
            Stream.admit s ~features:ok ~label:5 ~proba));
    Alcotest.test_case "sliding expiry evicts stale entries via compaction" `Quick
      (fun () ->
        let model, svc = stream_service 94 in
        let s =
          Stream.create ~policy:(Decay.Sliding { window = 8 }) ~capacity:24
            ~compact_fraction:0.5 svc
        in
        let rng = Rng.create 95 in
        for _ = 1 to 30 do
          admit_at s model rng 5.0
        done;
        let st = Stream.stats s in
        Alcotest.(check bool) "compacted" true (st.Stream.compactions > 0);
        Alcotest.(check bool) "evicted" true (st.Stream.evicted > 0);
        Alcotest.(check bool) "bounded" true (st.Stream.resident <= 24);
        Alcotest.(check bool) "live window honored" true (st.Stream.live <= 8);
        Alcotest.(check bool) "never empty" true (st.Stream.live >= 1));
    Alcotest.test_case "window of one collapses to a single survivor and serves"
      `Quick (fun () ->
        let model, svc = stream_service 96 in
        let s =
          Stream.create ~policy:(Decay.Sliding { window = 1 }) ~capacity:8
            ~compact_fraction:0.5 svc
        in
        let rng = Rng.create 97 in
        (* every admission expires everything older than itself; each
           step must compact down to exactly the newest entry *)
        for _ = 1 to 3 do
          admit_at s model rng 0.0;
          let st = Stream.stats s in
          Alcotest.(check int) "single survivor" 1 st.Stream.resident;
          Alcotest.(check int) "alive" 1 st.Stream.live
        done;
        let q = [| 0.1; -0.2 |] in
        let v =
          (Service.evaluate_batch (Stream.service s)
             [| (q, model.Model.predict_proba q) |]).(0)
        in
        Alcotest.(check bool) "credibility in range" true
          (v.Detector.mean_credibility >= 0.0 && v.Detector.mean_credibility <= 1.0));
    Alcotest.test_case "monitor escalation shrinks the decay horizon" `Quick
      (fun () ->
        let model, svc = stream_service 98 in
        let monitor = Monitor.create ~window:4 ~threshold:1.0 ~patience:2 () in
        let s =
          Stream.create ~policy:(Decay.Exponential { half_life = 32.0 })
            ~capacity:256 ~monitor svc
        in
        for _ = 1 to 8 do
          ignore (Monitor.observe monitor ~drifted:true)
        done;
        Alcotest.(check string) "ageing" "ageing"
          (Monitor.status_to_string (Monitor.status monitor));
        let rng = Rng.create 99 in
        admit_at s model rng 3.0;
        Alcotest.(check (float 0.0)) "quartered horizon" 0.25
          (Stream.stats s).Stream.scale);
    Alcotest.test_case "window state round-trips through create" `Quick (fun () ->
        let model, svc = stream_service 100 in
        let s =
          Stream.create ~policy:(Decay.Sliding { window = 16 }) ~capacity:64 svc
        in
        let rng = Rng.create 101 in
        for _ = 1 to 3 do
          admit_at s model rng 4.0
        done;
        let st = Stream.state s in
        let resumed = Stream.create ~state:st (Stream.service s) in
        Alcotest.(check int) "same residency" (Stream.stats s).Stream.resident
          (Stream.stats resumed).Stream.resident;
        Alcotest.(check int) "same live set" (Stream.stats s).Stream.live
          (Stream.stats resumed).Stream.live;
        admit_at resumed model rng 4.0;
        Alcotest.check_raises "mismatched state rejected"
          (Invalid_argument
             "Stream.create: window state does not match the calibration store")
          (fun () ->
            ignore
              (Stream.create
                 ~state:{ st with Decay.ws_seqs = [| 0 |] }
                 (Stream.service s))));
    Alcotest.test_case "environment knobs configure the stream" `Quick (fun () ->
        Unix.putenv Stream.capacity_env "64";
        Unix.putenv Stream.decay_env "window:3";
        Unix.putenv Stream.compact_env "0.9";
        Fun.protect
          ~finally:(fun () ->
            Unix.putenv Stream.capacity_env "";
            Unix.putenv Stream.decay_env "";
            Unix.putenv Stream.compact_env "")
          (fun () ->
            let model, svc = stream_service 102 in
            let s = Stream.create svc in
            let rng = Rng.create 103 in
            for _ = 1 to 10 do
              admit_at s model rng 2.0
            done;
            let st = Stream.stats s in
            Alcotest.(check bool) "window knob honored" true (st.Stream.live <= 3);
            Alcotest.(check bool) "compaction triggered" true
              (st.Stream.compactions > 0)));
    Alcotest.test_case "weighted distance p-value hand case" `Quick (fun () ->
        let loo = [| 1.0; 2.0; 3.0 |] in
        (* unit weights: one of three scores is >= 2.5 *)
        Alcotest.(check (float 0.0)) "unweighted" 0.5
          (Calibration.distance_pvalue ~loo 2.5);
        Alcotest.(check (float 0.0)) "unit suffix"
          (Calibration.distance_pvalue ~loo 2.5)
          (Calibration.distance_pvalue
             ~suffix:(Stats.suffix_sums [| 1.0; 1.0; 1.0 |])
             ~loo 2.5);
        (* zeroing the two stale scores leaves only the >= mass *)
        Alcotest.(check (float 0.0)) "stale mass dropped" 1.0
          (Calibration.distance_pvalue
             ~suffix:(Stats.suffix_sums [| 0.0; 0.0; 1.0 |])
             ~loo 2.5);
        Alcotest.check_raises "suffix length"
          (Invalid_argument "Calibration.distance_pvalue: suffix length must be n + 1")
          (fun () ->
            ignore (Calibration.distance_pvalue ~suffix:[| 1.0 |] ~loo 2.5)));
    Alcotest.test_case "reweight validates the weight vector" `Quick (fun () ->
        let model, _, cal = trained_world 104 in
        let c =
          Calibration.prepare_classification ~config:Config.default ~model
            ~feature_of:Fun.id cal
        in
        let n = Array.length c.Calibration.entries in
        Alcotest.check_raises "length"
          (Invalid_argument
             "Calibration.reweight_cls: one weight per calibration entry required")
          (fun () -> ignore (Calibration.reweight_cls c (Array.make (n + 1) 1.0)));
        Alcotest.check_raises "negative"
          (Invalid_argument
             "Calibration.reweight_cls: weights must be finite and non-negative")
          (fun () -> ignore (Calibration.reweight_cls c (Array.make n (-1.0))));
        let w = Array.make n 0.5 in
        let c' = Calibration.reweight_cls c w in
        Alcotest.(check int) "weights folded" n
          (Array.length c'.Calibration.ent_weights);
        let reset = Calibration.reweight_cls c' [||] in
        Alcotest.(check int) "empty resets to unit mode" 0
          (Array.length reset.Calibration.ent_weights));
    Alcotest.test_case "service_round relabels rejects into the stream" `Quick
      (fun () ->
        let model, svc = stream_service 105 in
        let stream = Stream.create ~capacity:256 svc in
        let monitor = Monitor.create ~window:8 () in
        let rng = Rng.create 106 in
        let outliers =
          Array.init 10 (fun _ ->
              [| Rng.gaussian rng ~mu:40.0 ~sigma:0.5;
                 Rng.gaussian rng ~mu:40.0 ~sigma:0.5 |])
        in
        let queries =
          Array.map
            (fun x -> (x, model.Model.predict_proba x))
            (Array.append (blob_dataset 107 10).x outliers)
        in
        let outcome =
          Incremental.service_round ~budget_fraction:0.5 ~monitor ~stream
            ~oracle:(fun _ -> 1) queries
        in
        Alcotest.(check bool) "outliers flagged" true
          (List.length outcome.Incremental.flagged_indices > 0);
        let st = Stream.stats stream in
        Alcotest.(check int) "every relabel admitted"
          (List.length outcome.Incremental.relabeled_indices)
          st.Stream.admitted;
        Alcotest.(check bool) "something admitted" true (st.Stream.admitted > 0);
        Alcotest.(check int) "each admission published" st.Stream.admitted
          st.Stream.publishes;
        Alcotest.(check int) "monitor observed the round" (Array.length queries)
          (Monitor.observed monitor));
    Alcotest.test_case "hot swap under live traffic never fails a request" `Quick
      (fun () ->
        let model, svc = stream_service 108 in
        let stream =
          Stream.create ~policy:(Decay.Sliding { window = 24 }) ~capacity:48
            ~compact_fraction:0.5 svc
        in
        let queries =
          Array.map (fun x -> (x, model.Model.predict_proba x)) (blob_dataset 109 16).x
        in
        let stop = Atomic.make false in
        let failures = Atomic.make 0 in
        let batches = ref 0 in
        let worker =
          Thread.create
            (fun () ->
              while not (Atomic.get stop) do
                (try
                   let v = Service.evaluate_batch (Stream.service stream) queries in
                   if Array.length v <> Array.length queries then
                     Atomic.incr failures
                 with _ -> Atomic.incr failures);
                incr batches;
                Thread.yield ()
              done)
            ()
        in
        let rng = Rng.create 110 in
        for i = 1 to 60 do
          admit_at stream model rng (5.0 +. (0.05 *. float_of_int i));
          Thread.yield ()
        done;
        (* make sure the traffic thread was actually scheduled against
           the swapping engine before declaring victory *)
        while !batches = 0 do
          Thread.yield ()
        done;
        Atomic.set stop true;
        Thread.join worker;
        let st = Stream.stats stream in
        Alcotest.(check int) "zero failed requests" 0 (Atomic.get failures);
        Alcotest.(check bool) "traffic actually ran" true (!batches > 0);
        Alcotest.(check bool) "every admission published" true
          (st.Stream.publishes >= 60);
        Alcotest.(check bool) "compaction happened under traffic" true
          (st.Stream.compactions > 0));
  ]

(* The tentpole promise, as a property: folding an explicit all-ones
   weight vector into the store must leave every served verdict
   bit-identical to the store that never heard of weights. *)
let weighted_world =
  lazy
    (let model, svc = stream_service 111 in
     let svc_ones =
       match Service.snapshot svc with
       | Snapshot.Cls s ->
           let cal = s.Snapshot.cls_calibration in
           let n = Array.length cal.Calibration.entries in
           let cal' = Calibration.reweight_cls cal (Array.make n 1.0) in
           Service.of_snapshot
             (Snapshot.Cls { s with Snapshot.cls_calibration = cal' })
       | Snapshot.Reg _ -> assert false
     in
     (model, svc, svc_ones))

let prop_unit_weights_bit_identical =
  QCheck2.Test.make ~name:"all-ones reweight serves bit-identical verdicts"
    ~count:30 (gen_queries 2) (fun xs ->
      let model, svc, svc_ones = Lazy.force weighted_world in
      let queries = Array.map (fun x -> (x, model.Model.predict_proba x)) xs in
      Service.evaluate_batch svc queries = Service.evaluate_batch svc_ones queries)

let prop_distance_suffix_unit =
  QCheck2.Test.make
    ~name:"unit suffix sums reproduce the unweighted distance p-value" ~count:200
    QCheck2.Gen.(
      pair
        (array_size (int_range 0 40) (float_range 0.0 50.0))
        (float_range 0.0 80.0))
    (fun (loo, score) ->
      Array.sort Float.compare loo;
      let suffix = Stats.suffix_sums (Array.make (Array.length loo) 1.0) in
      Int64.bits_of_float (Calibration.distance_pvalue ~loo score)
      = Int64.bits_of_float (Calibration.distance_pvalue ~suffix ~loo score))

let properties =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_validity;
      prop_pvalues_in_range;
      prop_raw_below_smoothed_support;
      prop_set_monotone_in_epsilon;
      prop_confidence_bounded;
      prop_distance_pvalue_monotone;
      prop_cls_batch_equiv;
      prop_reg_batch_equiv;
      prop_weights_finite;
      prop_unit_weights_bit_identical;
      prop_distance_suffix_unit;
    ]

let suite =
  [
    ("core.nonconformity", nonconformity_tests);
    ("core.extensions", extension_tests);
    ("core.config", config_tests);
    ("core.calibration", calibration_tests);
    ("core.pvalue", pvalue_tests);
    ("core.scores", scores_tests);
    ("core.detector", detector_tests);
    ("core.batch", batch_tests);
    ("core.shared_scan", shared_scan_tests);
    ("core.intervals", interval_tests);
    ("core.service", service_tests);
    ("core.assessment", assessment_tests);
    ("core.incremental", incremental_tests);
    ("core.index_e2e", index_e2e_tests);
    ("core.baselines", baseline_tests);
    ("core.framework", framework_tests);
    ("core.tuning", tuning_tests);
    ("core.monitor", monitor_tests);
    ("core.decay", decay_tests);
    ("core.stream", stream_tests);
    ("core.metrics", metrics_tests);
    ("core.regressions", regression_tests);
    ("core.telemetry", telemetry_tests);
    ("core.properties", properties);
  ]
