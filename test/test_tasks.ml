(* Tests for the case-study layer: scenario invariants for each case
   study, the generic runner, the search engine, and the C5 pipeline. *)

open Prom_linalg
open Prom_tasks

let check_scenario name (s : 'w Case_study.scenario) =
  let check_labels ws ys =
    Alcotest.(check int) (name ^ " labels align") (Array.length ws) (Array.length ys);
    Array.iter
      (fun y ->
        Alcotest.(check bool) (name ^ " label in range") true
          (y >= 0 && y < s.Case_study.n_classes))
      ys
  in
  check_labels s.Case_study.train_w s.Case_study.train_y;
  check_labels s.Case_study.id_w s.Case_study.id_y;
  check_labels s.Case_study.drift_w s.Case_study.drift_y;
  (* perf is a ratio in [0,1] and the stored label is optimal. *)
  Array.iteri
    (fun i w ->
      if i < 25 then begin
        for c = 0 to s.Case_study.n_classes - 1 do
          let p = s.Case_study.perf w c in
          Alcotest.(check bool) (name ^ " perf in [0,1]") true (p >= 0.0 && p <= 1.0 +. 1e-9)
        done;
        Alcotest.(check (float 1e-6))
          (name ^ " stored label is optimal")
          1.0
          (s.Case_study.perf w s.Case_study.train_y.(i))
      end)
    s.Case_study.train_w

let scenario_tests =
  [
    Alcotest.test_case "C1 scenario invariants" `Quick (fun () ->
        check_scenario "c1" (Thread_coarsening.scenario ~kernels_per_suite:20 ~seed:1 ()));
    Alcotest.test_case "C2 scenario invariants" `Quick (fun () ->
        check_scenario "c2" (Loop_vectorization.scenario ~loops_per_family:6 ~seed:2 ()));
    Alcotest.test_case "C3 scenario invariants" `Quick (fun () ->
        check_scenario "c3" (Hetero_mapping.scenario ~kernels_per_suite:20 ~seed:3 ()));
    Alcotest.test_case "C4 scenario invariants" `Quick (fun () ->
        check_scenario "c4" (Vuln_detection.scenario ~per_era:16 ~seed:4 ()));
    Alcotest.test_case "C6 scenario invariants" `Quick (fun () ->
        check_scenario "c6" (Deployment_risk.scenario ~per_window:20 ~seed:12 ()));
    Alcotest.test_case "C6 drift shifts team tenure and off-hours mix" `Quick
      (fun () ->
        (* The deployment pool is drawn after the team reorganization:
           tenure goes down, night/weekend deploys go up. *)
        let s = Deployment_risk.scenario ~per_window:40 ~seed:13 () in
        let mean f ws =
          Array.fold_left (fun a w -> a +. f w) 0.0 ws
          /. float_of_int (Array.length ws)
        in
        let tenure (d, _) = d.Deployment_risk.team_tenure in
        let offhours w = (Deployment_risk.feature_vector w).(10) in
        Alcotest.(check bool)
          "drift team is greener" true
          (mean tenure s.Case_study.drift_w < mean tenure s.Case_study.train_w);
        Alcotest.(check bool)
          "drift deploys lean off-hours" true
          (mean offhours s.Case_study.drift_w
          > mean offhours s.Case_study.train_w));
    Alcotest.test_case "C4 drift set uses late eras only" `Quick (fun () ->
        let s = Vuln_detection.scenario ~per_era:8 ~seed:5 () in
        Array.iter
          (fun w -> Alcotest.(check bool) "late era" true (w.Vuln_detection.era >= 2021))
          s.Case_study.drift_w);
    Alcotest.test_case "C1 holds parboil out of training" `Quick (fun () ->
        let s = Thread_coarsening.scenario ~kernels_per_suite:10 ~seed:6 () in
        Array.iter
          (fun w ->
            Alcotest.(check bool) "no parboil" true
              (w.Thread_coarsening.kernel.Prom_synth.Opencl.suite <> "parboil"))
          s.Case_study.train_w;
        Array.iter
          (fun w ->
            Alcotest.(check string) "drift is parboil" "parboil"
              w.Thread_coarsening.kernel.Prom_synth.Opencl.suite)
          s.Case_study.drift_w);
    Alcotest.test_case "scenario generation is deterministic" `Quick (fun () ->
        let a = Hetero_mapping.scenario ~kernels_per_suite:10 ~seed:7 () in
        let b = Hetero_mapping.scenario ~kernels_per_suite:10 ~seed:7 () in
        Alcotest.(check (array int)) "same labels" a.Case_study.train_y b.Case_study.train_y);
  ]

let runner_tests =
  [
    Alcotest.test_case "runner produces a complete result (C3/GBC)" `Slow (fun () ->
        let s = Hetero_mapping.scenario ~kernels_per_suite:25 ~seed:8 () in
        let spec = List.nth Hetero_mapping.models 2 in
        let r = Case_study.run ~seed:8 s spec in
        Alcotest.(check int) "design samples" (Array.length s.Case_study.id_w)
          (Array.length r.Case_study.design_perf);
        Alcotest.(check int) "deploy samples" (Array.length s.Case_study.drift_w)
          (Array.length r.Case_study.deploy_perf);
        Alcotest.(check int) "four functions" 4 (List.length r.Case_study.per_function);
        Alcotest.(check int) "three baselines" 3 (List.length r.Case_study.baseline_metrics);
        Alcotest.(check bool) "flagged fraction in [0,1]" true
          (r.Case_study.flagged_fraction >= 0.0 && r.Case_study.flagged_fraction <= 1.0);
        Alcotest.(check bool) "times recorded" true
          (r.Case_study.train_time > 0.0 && r.Case_study.detect_time > 0.0));
    Alcotest.test_case "summarize averages results" `Slow (fun () ->
        let s = Hetero_mapping.scenario ~kernels_per_suite:20 ~seed:9 () in
        let spec = List.nth Hetero_mapping.models 2 in
        let r = Case_study.run ~seed:9 s spec in
        let design, deploy, prom, detection = Case_study.summarize [ r; r ] in
        Alcotest.(check (float 1e-9)) "design mean" (Stats.mean r.Case_study.design_perf) design;
        Alcotest.(check (float 1e-9)) "deploy mean" (Stats.mean r.Case_study.deploy_perf) deploy;
        Alcotest.(check (float 1e-9)) "prom mean" (Stats.mean r.Case_study.prom_perf) prom;
        Alcotest.(check int) "n doubles" (2 * Array.length s.Case_study.drift_w)
          detection.Prom.Detection_metrics.n);
    Alcotest.test_case "summarize rejects empty input" `Quick (fun () ->
        Alcotest.check_raises "empty"
          (Invalid_argument "Case_study.summarize: empty result list") (fun () ->
            ignore (Case_study.summarize [])));
  ]

let search_tests =
  [
    Alcotest.test_case "search with a perfect model nears the oracle" `Quick (fun () ->
        let open Prom_synth in
        let rng = Rng.create 10 in
        let w = Schedule.sample_workload rng Schedule.Bert_base in
        let oracle = Schedule.oracle rng w in
        let r =
          Tvm_search.search ~rounds:12 (Rng.create 11) w
            ~cost:(Schedule.throughput w)
            ~on_measure:(fun _ _ -> ())
            ()
        in
        Alcotest.(check bool)
          (Printf.sprintf "ratio %.2f > 0.8" (r.Tvm_search.best_true /. oracle))
          true
          (r.Tvm_search.best_true /. oracle > 0.8));
    Alcotest.test_case "search with a perfect model beats an adversarial model" `Quick
      (fun () ->
        let open Prom_synth in
        let rng = Rng.create 12 in
        let w = Schedule.sample_workload rng Schedule.Bert_base in
        let good =
          Tvm_search.search (Rng.create 13) w ~cost:(Schedule.throughput w)
            ~on_measure:(fun _ _ -> ())
            ()
        in
        (* A cost model that prefers the worst schedules. *)
        let bad =
          Tvm_search.search (Rng.create 13) w
            ~cost:(fun s -> -.Schedule.throughput w s)
            ~on_measure:(fun _ _ -> ())
            ()
        in
        Alcotest.(check bool) "good >= bad" true
          (good.Tvm_search.best_true >= bad.Tvm_search.best_true));
    Alcotest.test_case "on_measure observes every measurement" `Quick (fun () ->
        let open Prom_synth in
        let rng = Rng.create 14 in
        let w = Schedule.sample_workload rng Schedule.Bert_base in
        let seen = ref 0 in
        let r =
          Tvm_search.search ~rounds:5 (Rng.create 15) w ~cost:(Schedule.throughput w)
            ~on_measure:(fun _ _ -> incr seen)
            ()
        in
        Alcotest.(check int) "count matches" r.Tvm_search.measurements !seen);
  ]

let dnn_tests =
  [
    Alcotest.test_case "C5 quick pipeline produces four rows" `Slow (fun () ->
        let r = Dnn_codegen.run ~train_samples:80 ~test_samples:30 ~search_workloads:1 ~seed:16 () in
        Alcotest.(check int) "rows" 4 (List.length r.Dnn_codegen.rows);
        List.iter
          (fun row ->
            Alcotest.(check bool) "ratio in (0, 1.05]" true
              (row.Dnn_codegen.native_ratio > 0.0 && row.Dnn_codegen.native_ratio <= 1.05);
            match (row.Dnn_codegen.network, row.Dnn_codegen.prom_ratio) with
            | Prom_synth.Schedule.Bert_base, None -> ()
            | Prom_synth.Schedule.Bert_base, Some _ -> Alcotest.fail "base has no prom row"
            | _, Some p -> Alcotest.(check bool) "prom ratio sane" true (p > 0.0 && p <= 1.05)
            | _, None -> Alcotest.fail "variant missing prom ratio")
          r.Dnn_codegen.rows);
  ]

let metrics_tests =
  [
    Alcotest.test_case "violin summarizes a distribution" `Quick (fun () ->
        let v = Metrics.violin_of [| 0.0; 0.25; 0.5; 0.75; 1.0 |] in
        Alcotest.(check (float 1e-9)) "median" 0.5 v.Metrics.median;
        Alcotest.(check (float 1e-9)) "min" 0.0 v.Metrics.vmin;
        Alcotest.(check (float 1e-9)) "max" 1.0 v.Metrics.vmax;
        Alcotest.(check int) "widths total" 5 (Array.fold_left ( + ) 0 v.Metrics.widths));
    Alcotest.test_case "misprediction threshold is 20%" `Quick (fun () ->
        Alcotest.(check bool) "below" true (Metrics.mispredicted ~perf:0.79);
        Alcotest.(check bool) "above" false (Metrics.mispredicted ~perf:0.81));
  ]

let encoder_tests =
  [
    Alcotest.test_case "seq_features is a histogram plus length" `Quick (fun () ->
        let spec = Encoders.seq_spec ~max_len:16 ~extra:0 in
        let rng = Rng.create 17 in
        let p = Prom_synth.Generator.generate rng (Prom_synth.Generator.style_of_era rng 2015) in
        let packed = Encoders.pack_program spec ~prefix:[] p in
        let f = Encoders.seq_features spec packed in
        Alcotest.(check int) "dim" (1 + spec.Prom_nn.Encoding.Seq.vocab) (Array.length f);
        (* histogram part sums to ~1 when tokens exist *)
        let hist_sum = Array.fold_left ( +. ) 0.0 (Array.sub f 1 (Array.length f - 1)) in
        Alcotest.(check (float 1e-6)) "normalized" 1.0 hist_sum);
    Alcotest.test_case "special tokens live beyond the code vocabulary" `Quick (fun () ->
        let t0 = Encoders.special_token ~extra:4 0 in
        let t3 = Encoders.special_token ~extra:4 3 in
        Alcotest.(check bool) "ordered" true (t3 = t0 + 3);
        Alcotest.check_raises "range"
          (Invalid_argument "Encoders.special_token: index out of range") (fun () ->
            ignore (Encoders.special_token ~extra:4 4)));
  ]

let suite_tests =
  [
    Alcotest.test_case "quick suite enumerates fourteen experiments" `Quick
      (fun () ->
        let cases = Suite.classification_cases ~scale:Suite.Quick ~seed:1 in
        Alcotest.(check int) "pairs" 14 (List.length cases);
        Alcotest.(check bool)
          "C6 is registered" true
          (List.exists (fun (c, _, _) -> c = "C6-deployment-risk") cases));
  ]

let suite =
  [
    ("tasks.scenarios", scenario_tests);
    ("tasks.runner", runner_tests);
    ("tasks.search", search_tests);
    ("tasks.dnn", dnn_tests);
    ("tasks.metrics", metrics_tests);
    ("tasks.encoders", encoder_tests);
    ("tasks.suite", suite_tests);
  ]
