(* Command-line driver for the PROM reproduction: list and run
   individual (case study, model) experiments, the C5 regression
   pipeline, or the whole evaluation suite.

     prom_cli list
     prom_cli run --case C1-thread-coarsening --model Magni-MLP
     prom_cli c5 --seed 7
     prom_cli suite --quick                                        *)

open Cmdliner
open Prom_tasks

let seed_arg =
  let doc = "Random seed; every experiment is deterministic given the seed." in
  Arg.(value & opt int 2025 & info [ "seed" ] ~docv:"SEED" ~doc)

let quick_arg =
  let doc = "Run at reduced scale (smaller datasets, faster)." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let scale_of quick = if quick then Suite.Quick else Suite.Full

let list_cmd =
  let run quick seed =
    Printf.printf "%-28s %s\n" "CASE" "MODEL";
    List.iter
      (fun (case, model, _) -> Printf.printf "%-28s %s\n" case model)
      (Suite.classification_cases ~scale:(scale_of quick) ~seed);
    Printf.printf "%-28s %s\n" "C5-dnn-codegen" "TLP-Attention (use the c5 command)"
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List available (case study, model) experiments")
    Term.(const run $ quick_arg $ seed_arg)

let run_cmd =
  let case_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "case" ] ~docv:"CASE" ~doc:"Case study name (see $(b,list)).")
  in
  let model_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "model" ] ~docv:"MODEL"
          ~doc:"Underlying model name; omit to run every model of the case.")
  in
  let run quick seed case model =
    let cases = Suite.classification_cases ~scale:(scale_of quick) ~seed in
    let selected =
      List.filter
        (fun (c, m, _) ->
          String.equal c case
          && match model with Some m' -> String.equal m m' | None -> true)
        cases
    in
    match selected with
    | [] ->
        Printf.eprintf "no experiment matches --case %s%s; try `prom_cli list`\n" case
          (match model with Some m -> " --model " ^ m | None -> "");
        exit 1
    | _ ->
        List.iter
          (fun (_, _, thunk) -> Format.printf "%a@.@." Case_study.pp_result (thunk ()))
          selected
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one classification case study (C1-C4)")
    Term.(const run $ quick_arg $ seed_arg $ case_arg $ model_arg)

let c5_cmd =
  let run quick seed =
    let q full qk = if quick then qk else full in
    let r =
      Dnn_codegen.run ~train_samples:(q 360 120) ~test_samples:(q 120 40)
        ~search_workloads:(q 3 1) ~seed ()
    in
    Format.printf "%a@." Dnn_codegen.pp_result r
  in
  Cmd.v
    (Cmd.info "c5" ~doc:"Run the C5 DNN code-generation regression case study")
    Term.(const run $ quick_arg $ seed_arg)

(* One-shot observability dump: build the quickstart blob world with a
   live registry, push a mixed (in-distribution + drifted) batch through
   the service layer on a small domain pool, run one incremental round,
   and print the resulting metrics. *)
let metrics_cmd =
  let json_arg =
    let doc = "Emit the snapshot as JSON instead of Prometheus text." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let check_arg =
    let doc =
      "Validate the Prometheus exposition output and exit non-zero when malformed \
       (implies text output)."
    in
    Arg.(value & flag & info [ "check" ] ~doc)
  in
  let run quick seed json check =
    let open Prom_linalg in
    let open Prom_ml in
    let open Prom in
    let module Pool = Prom_parallel.Pool in
    let module Obs = Prom_obs in
    let n_blob = if quick then 60 else 200 in
    let rng = Rng.create seed in
    let make_blob ~cx ~cy ~label n =
      Array.init n (fun _ ->
          ( [|
              Rng.gaussian rng ~mu:cx ~sigma:0.7; Rng.gaussian rng ~mu:cy ~sigma:0.7;
            |],
            label ))
    in
    let samples =
      Array.concat
        [
          make_blob ~cx:0.0 ~cy:0.0 ~label:0 n_blob;
          make_blob ~cx:3.0 ~cy:3.0 ~label:1 n_blob;
        ]
    in
    let data = Dataset.create (Array.map fst samples) (Array.map snd samples) in
    let registry = Obs.create_registry () in
    let telemetry = Telemetry.create registry in
    let deployed =
      Framework.deploy ~telemetry ~trainer:(Logistic.trainer ()) ~seed data
    in
    let pool = Pool.create 2 in
    Pool.attach_metrics pool registry;
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () ->
        (* Service layer over the deployment's calibration set. *)
        let model = Detector.Classification.model deployed.Framework.detector in
        let cal = deployed.Framework.calibration_data in
        let triples =
          List.init (Dataset.length cal) (fun i ->
              let x, y = Dataset.get cal i in
              (x, y, model.Model.predict_proba x))
        in
        let service = Service.create ~telemetry triples in
        let queries =
          Array.concat
            [
              Array.map
                (fun (x, _) -> (x, model.Model.predict_proba x))
                (make_blob ~cx:0.0 ~cy:0.0 ~label:0 (n_blob / 4));
              Array.map
                (fun (x, _) -> (x, model.Model.predict_proba x))
                (make_blob ~cx:8.0 ~cy:(-5.0) ~label:0 (n_blob / 4));
            ]
        in
        let verdicts = Service.evaluate_batch ~pool service queries in
        let monitor =
          Monitor.create ~window:(Stdlib.max 5 (n_blob / 10)) ~threshold:0.5
            ~patience:2 ~telemetry ()
        in
        Array.iter
          (fun v -> ignore (Monitor.observe monitor ~drifted:v.Detector.drifted))
          verdicts;
        (* One incremental round so the relabel/retrain counters tick. *)
        let drift_stream =
          Array.map fst (make_blob ~cx:6.0 ~cy:(-3.0) ~label:0 (n_blob / 8))
        in
        ignore (Framework.improve ~budget_fraction:0.3 deployed ~oracle:(fun _ -> 0)
            drift_stream);
        let snapshot = Obs.Snapshot.take registry in
        if json && not check then print_string (Obs.Snapshot.to_json snapshot)
        else begin
          let text = Obs.Snapshot.to_prometheus snapshot in
          print_string text;
          if check then
            match Obs.validate_exposition text with
            | Ok () -> prerr_endline "exposition: OK"
            | Error e ->
                Printf.eprintf "exposition: MALFORMED (%s)\n" e;
                exit 1
        end)
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Dump deployment-time metrics (Prometheus text or JSON) from an \
          instrumented quickstart world")
    Term.(const run $ quick_arg $ seed_arg $ json_arg $ check_arg)

let suite_cmd =
  let run quick seed =
    let t = Suite.run ~scale:(scale_of quick) ~seed () in
    Format.printf "%a@." Suite.pp t
  in
  Cmd.v
    (Cmd.info "suite" ~doc:"Run the full evaluation suite (all case studies)")
    Term.(const run $ quick_arg $ seed_arg)

let () =
  let info =
    Cmd.info "prom_cli" ~version:"1.0.0"
      ~doc:"Deployment-time drift detection for ML-based code optimization (PROM)"
  in
  exit (Cmd.eval (Cmd.group info [ list_cmd; run_cmd; c5_cmd; suite_cmd; metrics_cmd ]))
