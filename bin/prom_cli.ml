(* Command-line driver for the PROM reproduction: list and run
   individual (case study, model) experiments, the C5 regression
   pipeline, the whole evaluation suite, or the snapshot lifecycle.

     prom_cli list
     prom_cli run --case C1-thread-coarsening --model Magni-MLP
     prom_cli c5 --seed 7
     prom_cli suite --quick
     prom_cli save --dir /tmp/snaps
     prom_cli load --dir /tmp/snaps
     prom_cli serve --snapshot-dir /tmp/snaps
     prom_cli serve --tenants /tmp/tenants --listen 0              *)

open Cmdliner
open Prom_tasks

let seed_arg =
  let doc = "Random seed; every experiment is deterministic given the seed." in
  Arg.(value & opt int 2025 & info [ "seed" ] ~docv:"SEED" ~doc)

let quick_arg =
  let doc = "Run at reduced scale (smaller datasets, faster)." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let scale_of quick = if quick then Suite.Quick else Suite.Full

let list_cmd =
  let run quick seed =
    Printf.printf "%-28s %s\n" "CASE" "MODEL";
    List.iter
      (fun (case, model, _) -> Printf.printf "%-28s %s\n" case model)
      (Suite.classification_cases ~scale:(scale_of quick) ~seed);
    Printf.printf "%-28s %s\n" "C5-dnn-codegen" "TLP-Attention (use the c5 command)"
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List available (case study, model) experiments")
    Term.(const run $ quick_arg $ seed_arg)

let run_cmd =
  let case_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "case" ] ~docv:"CASE" ~doc:"Case study name (see $(b,list)).")
  in
  let model_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "model" ] ~docv:"MODEL"
          ~doc:"Underlying model name; omit to run every model of the case.")
  in
  let run quick seed case model =
    let cases = Suite.classification_cases ~scale:(scale_of quick) ~seed in
    let selected =
      List.filter
        (fun (c, m, _) ->
          String.equal c case
          && match model with Some m' -> String.equal m m' | None -> true)
        cases
    in
    match selected with
    | [] ->
        Printf.eprintf "no experiment matches --case %s%s; try `prom_cli list`\n" case
          (match model with Some m -> " --model " ^ m | None -> "");
        exit 1
    | _ ->
        List.iter
          (fun (_, _, thunk) -> Format.printf "%a@.@." Case_study.pp_result (thunk ()))
          selected
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one classification case study (C1-C4)")
    Term.(const run $ quick_arg $ seed_arg $ case_arg $ model_arg)

let c5_cmd =
  let run quick seed =
    let q full qk = if quick then qk else full in
    let r =
      Dnn_codegen.run ~train_samples:(q 360 120) ~test_samples:(q 120 40)
        ~search_workloads:(q 3 1) ~seed ()
    in
    Format.printf "%a@." Dnn_codegen.pp_result r
  in
  Cmd.v
    (Cmd.info "c5" ~doc:"Run the C5 DNN code-generation regression case study")
    Term.(const run $ quick_arg $ seed_arg)

(* One-shot observability dump: build the quickstart blob world with a
   live registry, push a mixed (in-distribution + drifted) batch through
   the service layer on a small domain pool, run one incremental round,
   and print the resulting metrics. *)
let metrics_cmd =
  let json_arg =
    let doc = "Emit the snapshot as JSON instead of Prometheus text." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let check_arg =
    let doc =
      "Validate the Prometheus exposition output and exit non-zero when malformed \
       (implies text output)."
    in
    Arg.(value & flag & info [ "check" ] ~doc)
  in
  let run quick seed json check =
    let open Prom_linalg in
    let open Prom_ml in
    let open Prom in
    let module Pool = Prom_parallel.Pool in
    let module Obs = Prom_obs in
    let n_blob = if quick then 60 else 200 in
    let rng = Rng.create seed in
    let make_blob ~cx ~cy ~label n =
      Array.init n (fun _ ->
          ( [|
              Rng.gaussian rng ~mu:cx ~sigma:0.7; Rng.gaussian rng ~mu:cy ~sigma:0.7;
            |],
            label ))
    in
    let samples =
      Array.concat
        [
          make_blob ~cx:0.0 ~cy:0.0 ~label:0 n_blob;
          make_blob ~cx:3.0 ~cy:3.0 ~label:1 n_blob;
        ]
    in
    let data = Dataset.create (Array.map fst samples) (Array.map snd samples) in
    let registry = Obs.create_registry () in
    let telemetry = Telemetry.create registry in
    let deployed =
      Framework.deploy ~telemetry ~trainer:(Logistic.trainer ()) ~seed data
    in
    let pool = Pool.create 2 in
    Pool.attach_metrics pool registry;
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () ->
        (* Service layer over the deployment's calibration set. *)
        let model = Detector.Classification.model deployed.Framework.detector in
        let cal = deployed.Framework.calibration_data in
        let triples =
          List.init (Dataset.length cal) (fun i ->
              let x, y = Dataset.get cal i in
              (x, y, model.Model.predict_proba x))
        in
        let service = Service.create ~telemetry triples in
        let queries =
          Array.concat
            [
              Array.map
                (fun (x, _) -> (x, model.Model.predict_proba x))
                (make_blob ~cx:0.0 ~cy:0.0 ~label:0 (n_blob / 4));
              Array.map
                (fun (x, _) -> (x, model.Model.predict_proba x))
                (make_blob ~cx:8.0 ~cy:(-5.0) ~label:0 (n_blob / 4));
            ]
        in
        let verdicts = Service.evaluate_batch ~pool service queries in
        let monitor =
          Monitor.create ~window:(Stdlib.max 5 (n_blob / 10)) ~threshold:0.5
            ~patience:2 ~telemetry ()
        in
        Array.iter
          (fun v -> ignore (Monitor.observe monitor ~drifted:v.Detector.drifted))
          verdicts;
        (* One incremental round so the relabel/retrain counters tick. *)
        let drift_stream =
          Array.map fst (make_blob ~cx:6.0 ~cy:(-3.0) ~label:0 (n_blob / 8))
        in
        ignore (Framework.improve ~budget_fraction:0.3 deployed ~oracle:(fun _ -> 0)
            drift_stream);
        let snapshot = Obs.Snapshot.take registry in
        if json && not check then print_string (Obs.Snapshot.to_json snapshot)
        else begin
          let text = Obs.Snapshot.to_prometheus snapshot in
          print_string text;
          if check then
            match Obs.validate_exposition text with
            | Ok () -> prerr_endline "exposition: OK"
            | Error e ->
                Printf.eprintf "exposition: MALFORMED (%s)\n" e;
                exit 1
        end)
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Dump deployment-time metrics (Prometheus text or JSON) from an \
          instrumented quickstart world")
    Term.(const run $ quick_arg $ seed_arg $ json_arg $ check_arg)

let suite_cmd =
  let run quick seed =
    let t = Suite.run ~scale:(scale_of quick) ~seed () in
    Format.printf "%a@." Suite.pp t
  in
  Cmd.v
    (Cmd.info "suite" ~doc:"Run the full evaluation suite (all case studies)")
    Term.(const run $ quick_arg $ seed_arg)

(* Shared world for the snapshot commands: the quickstart two-blob
   dataset plus a deterministic query stream mixing in-distribution and
   drifted inputs. Both are functions of the seed alone — the blob draws
   happen before any training — so a resumed process replays the exact
   same queries and its verdict digest can be compared bit-for-bit
   against the run that wrote the snapshot. *)
let snapshot_world ~quick ~seed =
  let open Prom_linalg in
  let open Prom_ml in
  let n_blob = if quick then 60 else 200 in
  let rng = Rng.create seed in
  let make_blob ~cx ~cy ~label n =
    Array.init n (fun _ ->
        ( [|
            Rng.gaussian rng ~mu:cx ~sigma:0.7; Rng.gaussian rng ~mu:cy ~sigma:0.7;
          |],
          label ))
  in
  let samples =
    Array.concat
      [
        make_blob ~cx:0.0 ~cy:0.0 ~label:0 n_blob;
        make_blob ~cx:3.0 ~cy:3.0 ~label:1 n_blob;
      ]
  in
  let data = Dataset.create (Array.map fst samples) (Array.map snd samples) in
  let queries =
    Array.map fst
      (Array.concat
         [
           make_blob ~cx:0.0 ~cy:0.0 ~label:0 (n_blob / 4);
           make_blob ~cx:3.0 ~cy:3.0 ~label:1 (n_blob / 4);
           make_blob ~cx:8.0 ~cy:(-5.0) ~label:0 (n_blob / 4);
         ])
  in
  (data, queries)

let dir_arg =
  let doc = "Snapshot directory (created when missing)." in
  Arg.(required & opt (some string) None & info [ "dir" ] ~docv:"DIR" ~doc)

let save_cmd =
  let run quick seed dir =
    let open Prom in
    let data, _ = snapshot_world ~quick ~seed in
    let deployed = Framework.deploy ~trainer:(Prom_ml.Logistic.trainer ()) ~seed data in
    let info =
      Snapshot.save ~dir (Snapshot.of_cls_detector deployed.Framework.detector)
    in
    Printf.printf "saved generation %d (%s, codec v%d, %d payload bytes)\n"
      info.Prom_store.Store.generation info.Prom_store.Store.kind
      info.Prom_store.Store.codec_version info.Prom_store.Store.payload_bytes;
    Printf.printf "file: %s\n" info.Prom_store.Store.path
  in
  Cmd.v
    (Cmd.info "save"
       ~doc:
         "Deploy the quickstart detector and write it as the next snapshot \
          generation")
    Term.(const run $ quick_arg $ seed_arg $ dir_arg)

let load_cmd =
  let run dir =
    let open Prom in
    match Snapshot.load_latest ~dir () with
    | None ->
        Printf.eprintf "no valid snapshot generation in %s\n" dir;
        exit 1
    | Some (snap, info) ->
        Printf.printf "generation  %d\n" info.Prom_store.Store.generation;
        Printf.printf "file        %s\n" info.Prom_store.Store.path;
        Printf.printf "kind        %s (codec v%d)\n" info.Prom_store.Store.kind
          info.Prom_store.Store.codec_version;
        Printf.printf "payload     %d bytes, crc32 %08x\n"
          info.Prom_store.Store.payload_bytes info.Prom_store.Store.crc;
        let committee_line names = String.concat ", " names in
        (match snap with
        | Snapshot.Cls s ->
            Printf.printf "model       %s\n"
              (match s.Snapshot.cls_model with
              | Some m -> m.Prom_ml.Model.name
              | None -> "external (host-owned)");
            Printf.printf "committee   %s\n"
              (committee_line
                 (List.map
                    (fun e -> e.Nonconformity.cls_name)
                    s.Snapshot.cls_committee));
            Printf.printf "entries     %d\n"
              (Array.length s.Snapshot.cls_calibration.Calibration.entries);
            Printf.printf "monitor     %s\n"
              (match s.Snapshot.cls_monitor with
              | Some _ -> "persisted"
              | None -> "absent")
        | Snapshot.Reg s ->
            Printf.printf "model       %s\n" s.Snapshot.reg_model.Prom_ml.Model.name;
            Printf.printf "committee   %s\n"
              (committee_line
                 (List.map
                    (fun e -> e.Nonconformity.reg_name)
                    s.Snapshot.reg_committee));
            Printf.printf "entries     %d\n"
              (Array.length s.Snapshot.reg_calibration.Calibration.rentries);
            Printf.printf "monitor     %s\n"
              (match s.Snapshot.reg_monitor with
              | Some _ -> "persisted"
              | None -> "absent"))
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:
         "Validate and describe the newest intact snapshot generation in a \
          directory")
    Term.(const run $ dir_arg)

(* The digest folds every verdict's accept/reject bit and the exact
   IEEE-754 bit patterns of its credibility and confidence scores into
   one CRC-32, so two serve runs printing the same digest produced
   bit-identical verdicts — the cross-restart identity tests key on
   this line. *)
let verdict_digest verdicts =
  let open Prom in
  let buf = Buffer.create (Array.length verdicts * 17) in
  Array.iter
    (fun v ->
      Prom_store.Buf.w_bool buf v.Detector.drifted;
      Prom_store.Buf.w_float buf v.Detector.mean_credibility;
      Prom_store.Buf.w_float buf v.Detector.mean_confidence)
    verdicts;
  Prom_store.Crc32.digest (Buffer.contents buf)

let serve_cmd =
  let snapshot_dir_arg =
    let doc =
      "Checkpoint directory: resume from the newest valid generation when one \
       exists (corrupt generations are skipped), otherwise deploy fresh and \
       checkpoint into it."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "snapshot-dir" ] ~docv:"DIR" ~doc)
  in
  let listen_arg =
    let doc =
      "Serve over HTTP on 127.0.0.1:$(docv) (0 picks an ephemeral port) \
       instead of running the one-shot digest: POST /predict, GET /metrics, \
       GET /healthz, POST /admin/swap. Runs until SIGINT/SIGTERM, then drains \
       in-flight requests and exits 0."
    in
    Arg.(value & opt (some int) None & info [ "listen" ] ~docv:"PORT" ~doc)
  in
  let shards_arg =
    let doc =
      "Event-loop shards for HTTP mode: each shard is one thread with its own \
       $(b,SO_REUSEPORT) listener, its own poll set and its own connection \
       table. 1 (the default) runs a single un-sharded loop."
    in
    Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N" ~doc)
  in
  let idle_timeout_arg =
    let doc =
      "Close keep-alive connections idle longer than $(docv) seconds in HTTP \
       mode; 0 disables the idle sweep."
    in
    Arg.(
      value
      & opt float Prom_server.Server.default_config.idle_timeout_s
      & info [ "idle-timeout" ] ~docv:"SECONDS" ~doc)
  in
  (* HTTP mode: same detector world as the digest mode, but wrapped in a
     Service and served until a termination signal arrives. With a
     --tenants root, every immediate subdirectory becomes one named
     tenant: resumed from its newest valid generation when one exists,
     otherwise deployed fresh (seed perturbed per tenant name) and
     checkpointed into its own directory. *)
  let run_http ~quick ~seed ~snapshot_dir ~tenants_root ~port ~shards
      ~idle_timeout_s detector origin =
    let open Prom in
    let module Pool = Prom_parallel.Pool in
    let registry = Prom_obs.create_registry () in
    let telemetry = Telemetry.create registry in
    let service =
      Service.of_snapshot ~telemetry (Snapshot.of_cls_detector detector)
    in
    let tenants = Tenant.create () in
    (match tenants_root with
    | None -> ()
    | Some root ->
        List.iter
          (fun name ->
            if not (Tenant.valid_name name) then
              Printf.eprintf "tenant %S: invalid name, skipped\n" name
            else if String.equal name Prom_server.Server.default_tenant then
              Printf.eprintf "tenant %S: reserved name, skipped\n" name
            else begin
              let dir = Filename.concat root name in
              let tenant_service, t_origin =
                match Snapshot.load_latest ~kind:Snapshot.kind_cls ~dir () with
                | Some (Snapshot.Cls s, info)
                  when Option.is_some s.Snapshot.cls_model ->
                    ( Service.of_snapshot ~telemetry (Snapshot.Cls s),
                      Printf.sprintf "resumed from generation %d"
                        info.Prom_store.Store.generation )
                | _ ->
                    let tseed =
                      seed + (Prom_store.Crc32.digest name land 0xffff)
                    in
                    let data, _ = snapshot_world ~quick ~seed:tseed in
                    let d =
                      Framework.deploy ~snapshot_dir:dir
                        ~trainer:(Prom_ml.Logistic.trainer ()) ~seed:tseed data
                    in
                    ( Service.of_snapshot ~telemetry
                        (Snapshot.of_cls_detector d.Framework.detector),
                      "fresh (checkpointed)" )
              in
              ignore
                (Tenant.register ~snapshot_dir:dir ~service:tenant_service
                   tenants name);
              Printf.printf "tenant %s: %s\n" name t_origin
            end)
          (Prom_store.Store.subdirs root));
    let pool = Pool.create (Pool.default_size ()) in
    Pool.attach_metrics pool registry;
    let config =
      { Prom_server.Server.default_config with port; shards; idle_timeout_s }
    in
    let server =
      Prom_server.Server.start ~config ~telemetry ~pool ?snapshot_dir ~tenants
        service
    in
    let stop_requested = Atomic.make false in
    let request_stop _ = Atomic.set stop_requested true in
    Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
    Printf.printf "detector: %s\n" origin;
    Printf.printf "listening on http://127.0.0.1:%d\n%!"
      (Prom_server.Server.port server);
    while not (Atomic.get stop_requested) do
      Thread.delay 0.1
    done;
    prerr_endline "draining...";
    Prom_server.Server.stop server;
    Pool.shutdown pool;
    prerr_endline "drained"
  in
  let tenants_arg =
    let doc =
      "Multi-tenant serving root for HTTP mode: every immediate subdirectory \
       of $(docv) becomes one tenant named after it — resumed from its newest \
       valid snapshot generation when one exists, otherwise deployed fresh and \
       checkpointed into its own directory — served at \
       $(b,/t/<name>/predict), $(b,/t/<name>/healthz) and \
       $(b,/t/<name>/admin/swap) next to the default tenant. Requires \
       $(b,--listen)."
    in
    Arg.(value & opt (some string) None & info [ "tenants" ] ~docv:"DIR" ~doc)
  in
  let run quick seed snapshot_dir tenants_root listen shards idle_timeout_s =
    let open Prom in
    (if Option.is_some tenants_root && Option.is_none listen then begin
       prerr_endline "prom_cli: --tenants requires --listen (HTTP mode)";
       exit 2
     end);
    let data, queries = snapshot_world ~quick ~seed in
    let fresh ?snapshot_dir () =
      let d =
        Framework.deploy ?snapshot_dir ~trainer:(Prom_ml.Logistic.trainer ()) ~seed
          data
      in
      d.Framework.detector
    in
    let detector, origin =
      match snapshot_dir with
      | None -> (fresh (), "fresh (no snapshot directory)")
      | Some dir -> (
          match Snapshot.load_latest ~kind:Snapshot.kind_cls ~dir () with
          | Some (Snapshot.Cls s, info) when Option.is_some s.Snapshot.cls_model ->
              ( Snapshot.to_cls_detector s,
                Printf.sprintf "resumed from generation %d"
                  info.Prom_store.Store.generation )
          | _ -> (fresh ~snapshot_dir:dir (), "fresh (checkpointed)"))
    in
    match listen with
    | Some port ->
        run_http ~quick ~seed ~snapshot_dir ~tenants_root ~port ~shards
          ~idle_timeout_s detector origin
    | None ->
        let verdicts = Detector.Classification.evaluate_batch detector queries in
        let drifted =
          Array.fold_left
            (fun acc v -> if v.Detector.drifted then acc + 1 else acc)
            0 verdicts
        in
        Printf.printf "detector: %s\n" origin;
        Printf.printf "queries: %d  drifted: %d\n" (Array.length verdicts) drifted;
        Printf.printf "verdict digest: %08x\n" (verdict_digest verdicts)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve the detector — one-shot verdict digest by default, or over \
          HTTP with $(b,--listen) — resuming from the latest valid snapshot \
          when one exists")
    Term.(
      const run $ quick_arg $ seed_arg $ snapshot_dir_arg $ tenants_arg
      $ listen_arg $ shards_arg $ idle_timeout_arg)

(* Build scan/index twin detectors over the same blob world, check the
   invariant the index lives under (bit-identical verdicts against the
   dense scan), then report the index's pruning effectiveness and how
   it absorbs incremental admits — small batches leave insertion debt,
   a large one crosses the imbalance policy and triggers a rebuild. *)
let index_stats_cmd =
  let run quick seed =
    let open Prom_linalg in
    let open Prom_ml in
    let open Prom in
    let n_blob = if quick then 300 else 2500 in
    let rng = Rng.create seed in
    let blob ~cx ~cy ~sigma ~label n =
      Array.init n (fun _ ->
          ( [|
              Rng.gaussian rng ~mu:cx ~sigma; Rng.gaussian rng ~mu:cy ~sigma;
            |],
            label ))
    in
    let samples =
      Array.concat
        [
          blob ~cx:0.0 ~cy:0.0 ~sigma:0.7 ~label:0 n_blob;
          blob ~cx:3.0 ~cy:3.0 ~sigma:0.7 ~label:1 n_blob;
        ]
    in
    let data = Dataset.create (Array.map fst samples) (Array.map snd samples) in
    let queries =
      Array.map fst
        (Array.concat
           [
             blob ~cx:0.0 ~cy:0.0 ~sigma:0.9 ~label:0 (n_blob / 4);
             blob ~cx:8.0 ~cy:(-5.0) ~sigma:0.9 ~label:0 (n_blob / 4);
           ])
    in
    let admit_batch n =
      Array.map (fun (x, y) -> (x, y)) (blob ~cx:1.5 ~cy:1.5 ~sigma:0.8 ~label:1 n)
    in
    (* Selection lean enough that the index gate (4 * query_k <= n)
       opens at the quick scale too. *)
    let config =
      { Config.default with Config.select_ratio = 0.05; select_all_below = 32 }
    in
    let model = Logistic.train data in
    let with_threshold v f =
      Unix.putenv Calibration.index_threshold_env v;
      Fun.protect
        ~finally:(fun () -> Unix.putenv Calibration.index_threshold_env "")
        f
    in
    let mk threshold =
      with_threshold threshold (fun () ->
          Detector.Classification.create ~config ~model ~feature_of:Fun.id data)
    in
    let det_scan = mk "1000000000" in
    let det_ix = mk "1" in
    let index_exn det =
      match Calibration.index_of_cls (Detector.Classification.calibration det) with
      | Some ix -> ix
      | None ->
          prerr_endline "index: detector did not index (gate closed?)";
          exit 1
    in
    let ix = index_exn det_ix in
    Printf.printf "=== Pruned kNN index stats (n=%d, %d-dim) ===\n"
      (Knn_index.length ix) (Knn_index.dim ix);
    let identical =
      Array.for_all
        (fun q ->
          let a = Detector.Classification.evaluate det_scan q in
          let b = Detector.Classification.evaluate det_ix q in
          a.Detector.drifted = b.Detector.drifted
          && Int64.bits_of_float a.Detector.mean_credibility
             = Int64.bits_of_float b.Detector.mean_credibility
          && Int64.bits_of_float a.Detector.mean_confidence
             = Int64.bits_of_float b.Detector.mean_confidence)
        queries
    in
    Printf.printf "scan-vs-index verdicts bit-identical: %b (%d queries)\n"
      identical (Array.length queries);
    Printf.printf "kernel backend     %s (%s)\n" (Kernels.active_name ())
      (Kernels.active_isa ());
    let s = Knn_index.stats ix in
    let candidates = s.Knn_index.st_scanned + s.Knn_index.st_rows_pruned in
    Printf.printf "clusters           %d\n" (Knn_index.clusters ix);
    Printf.printf "queries            %d\n" s.Knn_index.st_queries;
    Printf.printf "rows scanned       %d\n" s.Knn_index.st_scanned;
    Printf.printf "rows pruned        %d (%.1f%% of candidate rows)\n"
      s.Knn_index.st_rows_pruned
      (if candidates = 0 then 0.0
       else 100.0 *. float_of_int s.Knn_index.st_rows_pruned /. float_of_int candidates);
    Printf.printf "clusters pruned    %d\n" s.Knn_index.st_clusters_pruned;
    (* Incremental maintenance: a small admit batches into the existing
       clusters; a majority-sized one crosses the rebuild policy. *)
    let det_small =
      with_threshold "1" (fun () ->
          Detector.Classification.admit det_ix (admit_batch (n_blob / 8)))
    in
    let ix_small = index_exn det_small in
    Printf.printf "admit %-5d        insertion debt %d, %d clusters\n" (n_blob / 8)
      (Knn_index.inserted_since_build ix_small)
      (Knn_index.clusters ix_small);
    let det_big =
      with_threshold "1" (fun () ->
          Detector.Classification.admit det_small (admit_batch (n_blob + 1)))
    in
    let ix_big = index_exn det_big in
    Printf.printf "admit %-5d        insertion debt %d, %d clusters%s\n" (n_blob + 1)
      (Knn_index.inserted_since_build ix_big)
      (Knn_index.clusters ix_big)
      (if Knn_index.inserted_since_build ix_big = 0 then " (rebuilt)" else "");
    if not identical then begin
      prerr_endline "index parity: FAILED";
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "index-stats"
       ~doc:
         "Report the active distance-kernel backend and pruned kNN index \
          effectiveness (scan/prune counters, incremental insertion debt and \
          rebuilds) after checking the index answers bit-identically to the \
          dense scan")
    Term.(const run $ quick_arg $ seed_arg)

(* Drifting-stream protocol through the always-on recalibration loop:
   by default the decay ablation (unit weights vs exponential vs
   sliding window over the same stream), or a single policy via
   --policy. *)
let stream_cmd =
  let policy_arg =
    let doc =
      "Decay policy spec: $(b,none), $(b,exp:H) (half-life of H admissions) or \
       $(b,window:N); omit to run the full ablation (none, exp, window)."
    in
    Arg.(value & opt (some string) None & info [ "policy" ] ~docv:"SPEC" ~doc)
  in
  let run quick seed policy =
    let open Prom in
    let c = { Stream_protocol.default with Stream_protocol.sp_seed = seed } in
    let c =
      if quick then
        {
          c with
          Stream_protocol.sp_cal = 120;
          sp_rounds = 8;
          sp_batch = 24;
          sp_capacity = 200;
        }
      else c
    in
    match policy with
    | Some spec -> (
        match Decay.of_string spec with
        | None ->
            Printf.eprintf "invalid decay policy %S (use none | exp:H | window:N)\n"
              spec;
            exit 1
        | Some p ->
            Format.printf "%a@." Stream_protocol.pp_result
              (Stream_protocol.run ~policy:p ~config:c ()))
    | None ->
        List.iter
          (fun r -> Format.printf "%a@." Stream_protocol.pp_result r)
          (Stream_protocol.ablation ~config:c ())
  in
  Cmd.v
    (Cmd.info "stream"
       ~doc:
         "Replay the drifting-stream protocol through the streaming \
          recalibration loop (decay-policy ablation by default)")
    Term.(const run $ quick_arg $ seed_arg $ policy_arg)

let () =
  let info =
    Cmd.info "prom_cli" ~version:"1.0.0"
      ~doc:"Deployment-time drift detection for ML-based code optimization (PROM)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; run_cmd; c5_cmd; suite_cmd; metrics_cmd; index_stats_cmd;
            save_cmd; load_cmd; serve_cmd; stream_cmd ]))
