(* Command-line driver for the PROM reproduction: list and run
   individual (case study, model) experiments, the C5 regression
   pipeline, or the whole evaluation suite.

     prom_cli list
     prom_cli run --case C1-thread-coarsening --model Magni-MLP
     prom_cli c5 --seed 7
     prom_cli suite --quick                                        *)

open Cmdliner
open Prom_tasks

let seed_arg =
  let doc = "Random seed; every experiment is deterministic given the seed." in
  Arg.(value & opt int 2025 & info [ "seed" ] ~docv:"SEED" ~doc)

let quick_arg =
  let doc = "Run at reduced scale (smaller datasets, faster)." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let scale_of quick = if quick then Suite.Quick else Suite.Full

let list_cmd =
  let run quick seed =
    Printf.printf "%-28s %s\n" "CASE" "MODEL";
    List.iter
      (fun (case, model, _) -> Printf.printf "%-28s %s\n" case model)
      (Suite.classification_cases ~scale:(scale_of quick) ~seed);
    Printf.printf "%-28s %s\n" "C5-dnn-codegen" "TLP-Attention (use the c5 command)"
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List available (case study, model) experiments")
    Term.(const run $ quick_arg $ seed_arg)

let run_cmd =
  let case_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "case" ] ~docv:"CASE" ~doc:"Case study name (see $(b,list)).")
  in
  let model_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "model" ] ~docv:"MODEL"
          ~doc:"Underlying model name; omit to run every model of the case.")
  in
  let run quick seed case model =
    let cases = Suite.classification_cases ~scale:(scale_of quick) ~seed in
    let selected =
      List.filter
        (fun (c, m, _) ->
          String.equal c case
          && match model with Some m' -> String.equal m m' | None -> true)
        cases
    in
    match selected with
    | [] ->
        Printf.eprintf "no experiment matches --case %s%s; try `prom_cli list`\n" case
          (match model with Some m -> " --model " ^ m | None -> "");
        exit 1
    | _ ->
        List.iter
          (fun (_, _, thunk) -> Format.printf "%a@.@." Case_study.pp_result (thunk ()))
          selected
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one classification case study (C1-C4)")
    Term.(const run $ quick_arg $ seed_arg $ case_arg $ model_arg)

let c5_cmd =
  let run quick seed =
    let q full qk = if quick then qk else full in
    let r =
      Dnn_codegen.run ~train_samples:(q 360 120) ~test_samples:(q 120 40)
        ~search_workloads:(q 3 1) ~seed ()
    in
    Format.printf "%a@." Dnn_codegen.pp_result r
  in
  Cmd.v
    (Cmd.info "c5" ~doc:"Run the C5 DNN code-generation regression case study")
    Term.(const run $ quick_arg $ seed_arg)

let suite_cmd =
  let run quick seed =
    let t = Suite.run ~scale:(scale_of quick) ~seed () in
    Format.printf "%a@." Suite.pp t
  in
  Cmd.v
    (Cmd.info "suite" ~doc:"Run the full evaluation suite (all case studies)")
    Term.(const run $ quick_arg $ seed_arg)

let () =
  let info =
    Cmd.info "prom_cli" ~version:"1.0.0"
      ~doc:"Deployment-time drift detection for ML-based code optimization (PROM)"
  in
  exit (Cmd.eval (Cmd.group info [ list_cmd; run_cmd; c5_cmd; suite_cmd ]))
