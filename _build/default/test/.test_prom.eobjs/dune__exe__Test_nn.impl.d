test/test_nn.ml: Alcotest Array Dataset Encoding Gnn Layers List Model Nn_model Params Printf Prom_autodiff Prom_linalg Prom_ml Prom_nn Rng Seq_model Tape
