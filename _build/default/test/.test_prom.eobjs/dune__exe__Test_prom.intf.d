test/test_prom.mli:
