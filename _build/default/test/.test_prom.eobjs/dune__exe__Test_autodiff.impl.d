test/test_autodiff.ml: Alcotest Array Autodiff Loss Optimizer Param Params Printf Prom_autodiff Prom_linalg Rng Tape Vec
