test/test_linalg.ml: Alcotest Array Distance Float Fun List Mat Prom_linalg QCheck2 QCheck_alcotest Rng Stats Vec
