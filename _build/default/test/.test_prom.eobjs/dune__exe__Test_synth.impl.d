test/test_synth.ml: Alcotest Array Bug_inject Cast Feature Float Fun Generator Lexer List Loops Opencl Prom_linalg Prom_synth QCheck2 QCheck_alcotest Rng Schedule String
