test/test_prom.ml: Alcotest Test_autodiff Test_core Test_linalg Test_ml Test_nn Test_synth Test_tasks
