(* Gradient checks for the reverse-mode tape: every operation's
   backward pass is verified against central finite differences. *)

open Prom_linalg
open Prom_autodiff
open Autodiff

let eps = 1e-5
let tol = 1e-3

(* Numerically check d(loss)/d(input_i) for a scalar loss formed by
   summing the output tensor. *)
let grad_check ?(n = 3) name build input =
  let loss xs =
    let tape = Tape.create () in
    let t = tensor_of (Array.copy xs) in
    let out = build tape t in
    Vec.sum out.data
  in
  (* analytic *)
  let tape = Tape.create () in
  let t = tensor_of (Array.copy input) in
  let out = build tape t in
  Tape.backward tape ~root:out ~seed:(Array.make (Array.length out.data) 1.0);
  for i = 0 to min (n - 1) (Array.length input - 1) do
    let bumped up =
      let xs = Array.copy input in
      xs.(i) <- xs.(i) +. (if up then eps else -.eps);
      loss xs
    in
    let numeric = (bumped true -. bumped false) /. (2.0 *. eps) in
    Alcotest.(check (float tol))
      (Printf.sprintf "%s d/dx%d" name i)
      numeric t.grad.(i)
  done

let rng () = Rng.create 77

let tape_tests =
  [
    Alcotest.test_case "tanh gradient" `Quick (fun () ->
        grad_check "tanh" (fun tape t -> Tape.tanh_ tape t) [| 0.3; -1.2; 2.0 |]);
    Alcotest.test_case "sigmoid gradient" `Quick (fun () ->
        grad_check "sigmoid" (fun tape t -> Tape.sigmoid_ tape t) [| 0.5; -0.5; 3.0 |]);
    Alcotest.test_case "relu gradient" `Quick (fun () ->
        grad_check "relu" (fun tape t -> Tape.relu_ tape t) [| 0.5; -0.5; 3.0 |]);
    Alcotest.test_case "scale gradient" `Quick (fun () ->
        grad_check "scale" (fun tape t -> Tape.scale tape 2.5 t) [| 1.0; -2.0 |]);
    Alcotest.test_case "mul gradient" `Quick (fun () ->
        let other = tensor_of [| 2.0; -3.0; 0.5 |] in
        grad_check "mul" (fun tape t -> Tape.mul tape t other) [| 1.0; 1.5; -0.2 |]);
    Alcotest.test_case "matvec gradient w.r.t. input" `Quick (fun () ->
        let m = Param.mat (rng ()) ~rows:4 ~cols:3 in
        grad_check "matvec" (fun tape t -> Tape.matvec tape m t) [| 0.2; -0.7; 1.1 |]);
    Alcotest.test_case "matvec accumulates weight gradients" `Quick (fun () ->
        let m = Param.mat (rng ()) ~rows:2 ~cols:2 in
        let tape = Tape.create () in
        let x = tensor_of [| 1.0; 2.0 |] in
        let out = Tape.matvec tape m x in
        Tape.backward tape ~root:out ~seed:[| 1.0; 0.0 |];
        (* d out0 / d m[0][j] = x[j] *)
        Alcotest.(check (float 1e-9)) "gw00" 1.0 m.Param.gw.(0).(0);
        Alcotest.(check (float 1e-9)) "gw01" 2.0 m.Param.gw.(0).(1);
        Alcotest.(check (float 1e-9)) "gw10" 0.0 m.Param.gw.(1).(0));
    Alcotest.test_case "softmax1 gradient" `Quick (fun () ->
        grad_check "softmax"
          (fun tape t -> Tape.mul tape (Tape.softmax1 tape t) (tensor_of [| 1.0; 2.0; 3.0 |]))
          [| 0.1; 0.5; -0.4 |]);
    Alcotest.test_case "concat routes gradients" `Quick (fun () ->
        let b = tensor_of [| 9.0 |] in
        grad_check "concat" (fun tape t -> Tape.concat tape t b) [| 1.0; 2.0 |]);
    Alcotest.test_case "mean_pool gradient" `Quick (fun () ->
        let other = tensor_of [| 5.0; 6.0 |] in
        grad_check "mean_pool" (fun tape t -> Tape.mean_pool tape [ t; other ]) [| 1.0; 2.0 |]);
    Alcotest.test_case "weighted_sum gradients flow to weights" `Quick (fun () ->
        let xs = [| tensor_of [| 1.0; 2.0 |]; tensor_of [| -1.0; 3.0 |] |] in
        grad_check "weighted_sum" (fun tape t -> Tape.weighted_sum tape t xs) [| 0.4; 0.6 |]);
    Alcotest.test_case "dot_scores gradient" `Quick (fun () ->
        let keys = [| tensor_of [| 1.0; 0.0 |]; tensor_of [| 0.5; -0.5 |] |] in
        grad_check "dot_scores" (fun tape t -> Tape.dot_scores tape t keys) [| 0.7; 0.3 |]);
    Alcotest.test_case "backward clears the tape" `Quick (fun () ->
        let tape = Tape.create () in
        let t = tensor_of [| 1.0 |] in
        let out = Tape.tanh_ tape t in
        Alcotest.(check int) "one op" 1 (Tape.length tape);
        Tape.backward tape ~root:out ~seed:[| 1.0 |];
        Alcotest.(check int) "cleared" 0 (Tape.length tape));
    Alcotest.test_case "backward rejects wrong seed size" `Quick (fun () ->
        let tape = Tape.create () in
        let t = tensor_of [| 1.0; 2.0 |] in
        let out = Tape.tanh_ tape t in
        Alcotest.check_raises "seed" (Invalid_argument "Tape.backward: seed dimension mismatch")
          (fun () -> Tape.backward tape ~root:out ~seed:[| 1.0 |]));
  ]

let loss_tests =
  [
    Alcotest.test_case "cross entropy seed is softmax minus one-hot" `Quick (fun () ->
        let logits = tensor_of [| 1.0; 2.0; 0.5 |] in
        let _, seed = Loss.softmax_cross_entropy ~logits ~label:1 in
        let p = Vec.softmax logits.data in
        Alcotest.(check (float 1e-9)) "d0" p.(0) seed.(0);
        Alcotest.(check (float 1e-9)) "d1" (p.(1) -. 1.0) seed.(1));
    Alcotest.test_case "cross entropy loss positive" `Quick (fun () ->
        let logits = tensor_of [| 0.0; 0.0 |] in
        let loss, _ = Loss.softmax_cross_entropy ~logits ~label:0 in
        Alcotest.(check (float 1e-6)) "ln 2" (log 2.0) loss);
    Alcotest.test_case "squared loss and gradient" `Quick (fun () ->
        let pred = tensor_of [| 3.0 |] in
        let loss, seed = Loss.squared ~pred ~target:1.0 in
        Alcotest.(check (float 1e-9)) "loss" 2.0 loss;
        Alcotest.(check (float 1e-9)) "grad" 2.0 seed.(0));
  ]

let optimizer_tests =
  [
    Alcotest.test_case "sgd minimizes a quadratic" `Quick (fun () ->
        let params = Params.create () in
        let v = Params.add_vec params (Param.vec 1) in
        v.Param.v.(0) <- 5.0;
        let opt = Optimizer.sgd ~lr:0.1 params in
        for _ = 1 to 100 do
          (* d/dx (x - 2)^2 = 2 (x - 2) *)
          v.Param.gv.(0) <- 2.0 *. (v.Param.v.(0) -. 2.0);
          Optimizer.step opt
        done;
        Alcotest.(check (float 1e-6)) "converged" 2.0 v.Param.v.(0));
    Alcotest.test_case "adam minimizes a quadratic" `Quick (fun () ->
        let params = Params.create () in
        let v = Params.add_vec params (Param.vec 1) in
        v.Param.v.(0) <- 5.0;
        let opt = Optimizer.adam ~lr:0.2 params in
        for _ = 1 to 300 do
          v.Param.gv.(0) <- 2.0 *. (v.Param.v.(0) -. 2.0);
          Optimizer.step opt
        done;
        Alcotest.(check (float 1e-2)) "converged" 2.0 v.Param.v.(0));
    Alcotest.test_case "step zeroes gradients" `Quick (fun () ->
        let params = Params.create () in
        let v = Params.add_vec params (Param.vec 2) in
        v.Param.gv.(0) <- 1.0;
        Optimizer.step (Optimizer.sgd ~lr:0.1 params);
        Alcotest.(check (float 1e-12)) "zeroed" 0.0 v.Param.gv.(0));
    Alcotest.test_case "params count" `Quick (fun () ->
        let params = Params.create () in
        ignore (Params.add_mat params (Param.mat (rng ()) ~rows:3 ~cols:4));
        ignore (Params.add_vec params (Param.vec 5));
        Alcotest.(check int) "count" 17 (Params.count params));
  ]

let suite =
  [
    ("autodiff.tape", tape_tests);
    ("autodiff.loss", loss_tests);
    ("autodiff.optimizer", optimizer_tests);
  ]
