(* Tests for prom_nn: encodings round-trip; the sequence and graph
   networks learn synthetic languages/graph properties they should. *)

open Prom_linalg
open Prom_ml
open Prom_nn

let seq_spec = { Encoding.Seq.max_len = 12; vocab = 10 }

let encoding_tests =
  [
    Alcotest.test_case "sequence encode/decode round-trips" `Quick (fun () ->
        let tokens = [| 3; 1; 4; 1; 5 |] in
        let packed = Encoding.Seq.encode seq_spec tokens in
        Alcotest.(check (array int)) "tokens" tokens (Encoding.Seq.decode seq_spec packed));
    Alcotest.test_case "sequence encode truncates to max_len" `Quick (fun () ->
        let tokens = Array.make 40 2 in
        let packed = Encoding.Seq.encode seq_spec tokens in
        Alcotest.(check int) "truncated" 12 (Array.length (Encoding.Seq.decode seq_spec packed)));
    Alcotest.test_case "sequence encode rejects out-of-vocab tokens" `Quick (fun () ->
        Alcotest.check_raises "vocab"
          (Invalid_argument "Encoding.Seq.encode: token 10 outside vocab 10") (fun () ->
            ignore (Encoding.Seq.encode seq_spec [| 10 |])));
    Alcotest.test_case "empty sequence round-trips" `Quick (fun () ->
        let packed = Encoding.Seq.encode seq_spec [||] in
        Alcotest.(check (array int)) "empty" [||] (Encoding.Seq.decode seq_spec packed));
    Alcotest.test_case "graph encode/decode round-trips" `Quick (fun () ->
        let spec = { Encoding.Graph.max_nodes = 5; feat_dim = 2 } in
        let g =
          {
            Encoding.Graph.nodes = [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |]; [| 5.0; 6.0 |] |];
            edges = [ (0, 1); (1, 2); (2, 0) ];
          }
        in
        let g' = Encoding.Graph.decode spec (Encoding.Graph.encode spec g) in
        Alcotest.(check int) "nodes" 3 (Array.length g'.Encoding.Graph.nodes);
        Alcotest.(check (array (float 1e-12))) "feat" [| 3.0; 4.0 |] g'.Encoding.Graph.nodes.(1);
        Alcotest.(check (list (pair int int))) "edges"
          (List.sort compare g.Encoding.Graph.edges)
          (List.sort compare g'.Encoding.Graph.edges));
    Alcotest.test_case "graph encode rejects oversize graphs" `Quick (fun () ->
        let spec = { Encoding.Graph.max_nodes = 2; feat_dim = 1 } in
        Alcotest.check_raises "size" (Invalid_argument "Encoding.Graph.encode: too many nodes")
          (fun () ->
            ignore
              (Encoding.Graph.encode spec
                 { Encoding.Graph.nodes = [| [| 0.0 |]; [| 0.0 |]; [| 0.0 |] |]; edges = [] })));
    Alcotest.test_case "graph encode rejects bad edges" `Quick (fun () ->
        let spec = { Encoding.Graph.max_nodes = 3; feat_dim = 1 } in
        Alcotest.check_raises "edge"
          (Invalid_argument "Encoding.Graph.encode: edge endpoint out of range") (fun () ->
            ignore
              (Encoding.Graph.encode spec
                 { Encoding.Graph.nodes = [| [| 0.0 |] |]; edges = [ (0, 2) ] })));
  ]

(* Synthetic language: class = most frequent of tokens {1, 2}. A
   sequence model must aggregate over the whole input to solve it. *)
let majority_dataset seed n =
  let rng = Rng.create seed in
  let samples =
    Array.init n (fun _ ->
        let label = Rng.int rng 2 in
        let major = label + 1 and minor = 2 - label in
        let tokens =
          Array.init 10 (fun _ -> if Rng.bernoulli rng 0.8 then major else minor)
        in
        (Encoding.Seq.encode seq_spec tokens, label))
  in
  Dataset.create (Array.map fst samples) (Array.map snd samples)

let seq_arch_test name arch =
  Alcotest.test_case (name ^ " learns token majority") `Slow (fun () ->
      let train = majority_dataset 60 200 in
      let test = majority_dataset 61 60 in
      let params =
        { (Seq_model.default_params seq_spec) with Seq_model.arch; epochs = 10 }
      in
      let c = Seq_model.train ~params train in
      Alcotest.(check bool) "accuracy > 0.8" true (Model.accuracy c test > 0.8))

let seq_tests =
  [
    seq_arch_test "lstm" Seq_model.Lstm;
    seq_arch_test "gru" Seq_model.Gru;
    seq_arch_test "attention" Seq_model.Attention;
    Alcotest.test_case "sequence classifier exposes an embedding" `Quick (fun () ->
        let train = majority_dataset 62 40 in
        let params =
          { (Seq_model.default_params seq_spec) with Seq_model.epochs = 1; hidden = 6 }
        in
        let c = Seq_model.train ~params train in
        match Nn_model.embedding_of c with
        | Some embed ->
            Alcotest.(check int) "hidden dim" 6 (Array.length (embed train.x.(0)))
        | None -> Alcotest.fail "missing embedding");
    Alcotest.test_case "warm start does not mutate the source model" `Quick (fun () ->
        let train = majority_dataset 63 60 in
        let params =
          { (Seq_model.default_params seq_spec) with Seq_model.epochs = 3; hidden = 6 }
        in
        let m0 = Seq_model.train ~params train in
        let before = m0.Model.predict_proba train.x.(0) in
        let _m1 = Seq_model.train ~params ~init:m0 train in
        let after = m0.Model.predict_proba train.x.(0) in
        Alcotest.(check (array (float 1e-12))) "unchanged" before after);
    Alcotest.test_case "sequence regressor fits the token-2 fraction" `Slow (fun () ->
        (* Attention pooling averages token embeddings, so the fraction
           of a given token is exactly representable. *)
        let rng = Rng.create 64 in
        let samples =
          Array.init 150 (fun _ ->
              let tokens = Array.init 10 (fun _ -> 1 + Rng.int rng 2) in
              let frac =
                float_of_int (Array.fold_left (fun a t -> if t = 2 then a + 1 else a) 0 tokens)
                /. 10.0
              in
              (Encoding.Seq.encode seq_spec tokens, frac))
        in
        let d = Dataset.create (Array.map fst samples) (Array.map snd samples) in
        let params =
          { (Seq_model.default_params seq_spec) with Seq_model.arch = Attention; epochs = 15 }
        in
        let m = Seq_model.train_regressor ~params d in
        Alcotest.(check bool) "mse small" true (Model.mse m d < 0.02));
  ]

(* Graph property: class = graph has an edge into node 0 (needs message
   passing to see). Simpler learnable: class by mean node feature. *)
let graph_spec = { Encoding.Graph.max_nodes = 6; feat_dim = 2 }

let graph_dataset seed n =
  let rng = Rng.create seed in
  let samples =
    Array.init n (fun _ ->
        let label = Rng.int rng 2 in
        let base = if label = 0 then 0.0 else 1.5 in
        let k = 3 + Rng.int rng 3 in
        let nodes =
          Array.init k (fun _ ->
              [| Rng.gaussian rng ~mu:base ~sigma:0.3; Rng.gaussian rng ~mu:0.0 ~sigma:0.3 |])
        in
        let edges = List.init (k - 1) (fun i -> (i, i + 1)) in
        (Encoding.Graph.encode graph_spec { Encoding.Graph.nodes; edges }, label))
  in
  Dataset.create (Array.map fst samples) (Array.map snd samples)

let gnn_tests =
  [
    Alcotest.test_case "gnn learns a node-feature property" `Slow (fun () ->
        let train = graph_dataset 70 160 in
        let test = graph_dataset 71 60 in
        let params = { (Gnn.default_params graph_spec) with Gnn.epochs = 10 } in
        let c = Gnn.train ~params train in
        Alcotest.(check bool) "accuracy > 0.85" true (Model.accuracy c test > 0.85));
    Alcotest.test_case "gnn handles empty graphs" `Quick (fun () ->
        let train = graph_dataset 72 40 in
        let params = { (Gnn.default_params graph_spec) with Gnn.epochs = 1 } in
        let c = Gnn.train ~params train in
        let empty =
          Encoding.Graph.encode graph_spec { Encoding.Graph.nodes = [||]; edges = [] }
        in
        let p = c.Model.predict_proba empty in
        Alcotest.(check bool) "distribution" true
          (abs_float (Prom_linalg.Vec.sum p -. 1.0) < 1e-6));
    Alcotest.test_case "gnn exposes an embedding" `Quick (fun () ->
        let train = graph_dataset 73 40 in
        let params = { (Gnn.default_params graph_spec) with Gnn.epochs = 1; hidden = 7 } in
        let c = Gnn.train ~params train in
        match Nn_model.embedding_of c with
        | Some embed -> Alcotest.(check int) "dim" 7 (Array.length (embed train.x.(0)))
        | None -> Alcotest.fail "missing embedding");
  ]

let layer_tests =
  [
    Alcotest.test_case "lstm step preserves hidden dimension" `Quick (fun () ->
        let params = Prom_autodiff.Autodiff.Params.create () in
        let cell = Layers.lstm params (Rng.create 1) ~in_dim:3 ~hidden:5 in
        Alcotest.(check int) "hidden" 5 (Layers.lstm_hidden cell);
        let tape = Prom_autodiff.Autodiff.Tape.create () in
        let x = Prom_autodiff.Autodiff.tensor_of [| 1.0; 2.0; 3.0 |] in
        let h, c = Layers.lstm_forward tape cell x (Layers.lstm_init cell) in
        Alcotest.(check int) "h dim" 5 (Array.length h.Prom_autodiff.Autodiff.data);
        Alcotest.(check int) "c dim" 5 (Array.length c.Prom_autodiff.Autodiff.data));
    Alcotest.test_case "gru step preserves hidden dimension" `Quick (fun () ->
        let params = Prom_autodiff.Autodiff.Params.create () in
        let cell = Layers.gru params (Rng.create 2) ~in_dim:2 ~hidden:4 in
        let tape = Prom_autodiff.Autodiff.Tape.create () in
        let x = Prom_autodiff.Autodiff.tensor_of [| 1.0; -1.0 |] in
        let h = Layers.gru_forward tape cell x (Layers.gru_init cell) in
        Alcotest.(check int) "h dim" 4 (Array.length h.Prom_autodiff.Autodiff.data));
    Alcotest.test_case "lstm state values bounded by tanh" `Quick (fun () ->
        let params = Prom_autodiff.Autodiff.Params.create () in
        let cell = Layers.lstm params (Rng.create 3) ~in_dim:2 ~hidden:4 in
        let tape = Prom_autodiff.Autodiff.Tape.create () in
        let state = ref (Layers.lstm_init cell) in
        for _ = 1 to 20 do
          let x = Prom_autodiff.Autodiff.tensor_of [| 10.0; -10.0 |] in
          state := Layers.lstm_forward tape cell x !state
        done;
        Array.iter
          (fun v -> Alcotest.(check bool) "|h| <= 1" true (abs_float v <= 1.0))
          (fst !state).Prom_autodiff.Autodiff.data);
  ]

(* Finite-difference gradient checks through whole recurrent cells. *)
let cell_grad_tests =
  let open Prom_autodiff.Autodiff in
  let eps = 1e-5 and tol = 1e-3 in
  let check_cell name forward input =
    let loss xs =
      let tape = Tape.create () in
      let out = forward tape (tensor_of (Array.copy xs)) in
      Array.fold_left ( +. ) 0.0 out.data
    in
    let tape = Tape.create () in
    let t = tensor_of (Array.copy input) in
    let out = forward tape t in
    Tape.backward tape ~root:out ~seed:(Array.make (Array.length out.data) 1.0);
    Array.iteri
      (fun i _ ->
        let bump up =
          let xs = Array.copy input in
          xs.(i) <- xs.(i) +. (if up then eps else -.eps);
          loss xs
        in
        let numeric = (bump true -. bump false) /. (2.0 *. eps) in
        Alcotest.(check (float tol)) (Printf.sprintf "%s d/dx%d" name i) numeric t.grad.(i))
      input
  in
  [
    Alcotest.test_case "lstm cell gradient w.r.t. input" `Quick (fun () ->
        let params = Params.create () in
        let cell = Layers.lstm params (Prom_linalg.Rng.create 1) ~in_dim:3 ~hidden:4 in
        check_cell "lstm"
          (fun tape x -> fst (Layers.lstm_forward tape cell x (Layers.lstm_init cell)))
          [| 0.3; -0.8; 1.2 |]);
    Alcotest.test_case "gru cell gradient w.r.t. input" `Quick (fun () ->
        let params = Params.create () in
        let cell = Layers.gru params (Prom_linalg.Rng.create 2) ~in_dim:3 ~hidden:4 in
        check_cell "gru"
          (fun tape x -> Layers.gru_forward tape cell x (Layers.gru_init cell))
          [| 0.5; 0.1; -0.9 |]);
    Alcotest.test_case "two-step lstm gradient (BPTT)" `Quick (fun () ->
        let params = Params.create () in
        let cell = Layers.lstm params (Prom_linalg.Rng.create 3) ~in_dim:2 ~hidden:3 in
        check_cell "lstm-2step"
          (fun tape x ->
            let s1 = Layers.lstm_forward tape cell x (Layers.lstm_init cell) in
            fst (Layers.lstm_forward tape cell x s1))
          [| 0.4; -0.6 |]);
  ]

let suite =
  [
    ("nn.encoding", encoding_tests);
    ("nn.cell_gradients", cell_grad_tests);
    ("nn.seq", seq_tests);
    ("nn.gnn", gnn_tests);
    ("nn.layers", layer_tests);
  ]
