(* Tests for the program-synthesis substrate: AST printing, lexing,
   bug injection, and the analytic workload models. *)

open Prom_linalg
open Prom_synth

let sample_program seed era =
  let rng = Rng.create seed in
  Generator.generate rng (Generator.style_of_era rng era)

let cast_tests =
  [
    Alcotest.test_case "pretty printer emits balanced braces" `Quick (fun () ->
        let src = Cast.to_string (sample_program 1 2015) in
        let count c = String.fold_left (fun acc ch -> if ch = c then acc + 1 else acc) 0 src in
        Alcotest.(check int) "braces" (count '{') (count '}');
        Alcotest.(check int) "parens" (count '(') (count ')'));
    Alcotest.test_case "stats count functions" `Quick (fun () ->
        let p = sample_program 2 2018 in
        let s = Cast.stats_of p in
        Alcotest.(check int) "functions" (List.length p.Cast.functions) s.Cast.n_functions;
        Alcotest.(check bool) "statements" true (s.Cast.n_statements > 0));
    Alcotest.test_case "calls_of records free and malloc" `Quick (fun () ->
        let rng = Rng.create 3 in
        let p =
          Bug_inject.inject rng ~era:2013 Bug_inject.Double_free (sample_program 3 2013)
        in
        let calls = Cast.calls_of p in
        let count name = List.length (List.filter (String.equal name) calls) in
        Alcotest.(check bool) "two frees" true (count "free" >= 2);
        Alcotest.(check bool) "one malloc" true (count "malloc" >= 1));
  ]

let lexer_tests =
  [
    Alcotest.test_case "lexes a simple declaration" `Quick (fun () ->
        let toks = Lexer.tokenize "int x = 42;" in
        Alcotest.(check int) "count" 5 (List.length toks);
        match toks with
        | [ Lexer.Kw "int"; Ident "x"; Punct "="; Int_const 42; Punct ";" ] -> ()
        | _ -> Alcotest.fail "unexpected tokens");
    Alcotest.test_case "maximal munch for multi-char operators" `Quick (fun () ->
        match Lexer.tokenize "a<=b" with
        | [ Lexer.Ident "a"; Punct "<="; Ident "b" ] -> ()
        | _ -> Alcotest.fail "expected <=");
    Alcotest.test_case "float literals with suffix" `Quick (fun () ->
        match Lexer.tokenize "1.5f" with
        | [ Lexer.Float_const f ] -> Alcotest.(check (float 1e-9)) "value" 1.5 f
        | _ -> Alcotest.fail "expected float");
    Alcotest.test_case "string literals with escapes" `Quick (fun () ->
        match Lexer.tokenize {|"a\"b"|} with
        | [ Lexer.Str_const s ] -> Alcotest.(check string) "value" {|a"b|} s
        | _ -> Alcotest.fail "expected string");
    Alcotest.test_case "line and block comments are skipped" `Quick (fun () ->
        Alcotest.(check int) "count" 1
          (List.length (Lexer.tokenize "/* hi */ x // tail\n")));
    Alcotest.test_case "preprocessor lines are skipped" `Quick (fun () ->
        Alcotest.(check int) "count" 0 (List.length (Lexer.tokenize "#include <stdio.h>\n")));
    Alcotest.test_case "unterminated comment fails" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Lexer.tokenize "/* oops");
             false
           with Failure _ -> true));
    Alcotest.test_case "unexpected character fails" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Lexer.tokenize "int $x;");
             false
           with Failure _ -> true));
    Alcotest.test_case "generated programs always lex" `Quick (fun () ->
        for seed = 1 to 20 do
          let era = 2013 + (seed mod 11) in
          let src = Cast.to_string (sample_program seed era) in
          Alcotest.(check bool) "tokens" true (List.length (Lexer.tokenize src) > 0)
        done);
  ]

let vocab_tests =
  [
    Alcotest.test_case "ids stay within vocabulary size" `Quick (fun () ->
        let vocab = Lexer.Vocab.create ~ident_buckets:16 in
        let src = Cast.to_string (sample_program 7 2020) in
        let ids = Lexer.Vocab.encode vocab (Lexer.tokenize src) in
        Array.iter
          (fun id ->
            Alcotest.(check bool) "range" true (id >= 1 && id < Lexer.Vocab.size vocab))
          ids);
    Alcotest.test_case "keywords get stable distinct ids" `Quick (fun () ->
        let vocab = Lexer.Vocab.create ~ident_buckets:8 in
        let id_int = Lexer.Vocab.id_of vocab (Lexer.Kw "int") in
        let id_for = Lexer.Vocab.id_of vocab (Lexer.Kw "for") in
        Alcotest.(check bool) "distinct" true (id_int <> id_for);
        Alcotest.(check int) "stable" id_int (Lexer.Vocab.id_of vocab (Lexer.Kw "int")));
    Alcotest.test_case "known library calls get dedicated ids" `Quick (fun () ->
        let vocab = Lexer.Vocab.create ~ident_buckets:8 in
        let id_free = Lexer.Vocab.id_of vocab (Lexer.Ident "free") in
        let id_other = Lexer.Vocab.id_of vocab (Lexer.Ident "user_function") in
        Alcotest.(check bool) "separate spaces" true (id_free <> id_other));
    Alcotest.test_case "identifier hashing is deterministic" `Quick (fun () ->
        let vocab = Lexer.Vocab.create ~ident_buckets:8 in
        Alcotest.(check int) "same id"
          (Lexer.Vocab.id_of vocab (Lexer.Ident "some_name"))
          (Lexer.Vocab.id_of vocab (Lexer.Ident "some_name")));
    Alcotest.test_case "create rejects zero buckets" `Quick (fun () ->
        Alcotest.check_raises "buckets"
          (Invalid_argument "Vocab.create: need >= 1 identifier bucket") (fun () ->
            ignore (Lexer.Vocab.create ~ident_buckets:0)));
  ]

let bug_tests =
  [
    Alcotest.test_case "label/of_label round-trip" `Quick (fun () ->
        List.iter
          (fun cwe ->
            Alcotest.(check bool) "roundtrip" true
              (Bug_inject.of_label (Bug_inject.label cwe) = cwe))
          Bug_inject.all);
    Alcotest.test_case "all eight classes are distinct" `Quick (fun () ->
        let labels = List.map Bug_inject.label Bug_inject.all in
        Alcotest.(check int) "distinct" 8 (List.length (List.sort_uniq compare labels)));
    Alcotest.test_case "injection adds a function and keeps main" `Quick (fun () ->
        let rng = Rng.create 9 in
        let base = sample_program 9 2015 in
        let p = Bug_inject.inject rng ~era:2015 Bug_inject.Null_deref base in
        Alcotest.(check bool) "more functions" true
          (List.length p.Cast.functions > List.length base.Cast.functions);
        Alcotest.(check bool) "main present" true
          (List.exists (fun f -> f.Cast.fname = "main") p.Cast.functions));
    Alcotest.test_case "every (era, cwe) pair produces lexable code" `Quick (fun () ->
        List.iter
          (fun era ->
            List.iter
              (fun cwe ->
                let rng = Rng.create (era + Bug_inject.label cwe) in
                let p = Bug_inject.inject rng ~era cwe (sample_program era era) in
                Alcotest.(check bool) "lexes" true
                  (List.length (Lexer.tokenize (Cast.to_string p)) > 0))
              Bug_inject.all)
          [ 2013; 2017; 2021; 2023 ]);
    Alcotest.test_case "late-era double free is thread-mediated" `Quick (fun () ->
        let rng = Rng.create 10 in
        let p = Bug_inject.inject rng ~era:2023 Bug_inject.Double_free (sample_program 10 2023) in
        Alcotest.(check bool) "pthread_create present" true
          (List.mem "pthread_create" (Cast.calls_of p)));
    Alcotest.test_case "add_decoys keeps the program benign" `Quick (fun () ->
        let rng = Rng.create 12 in
        let base = sample_program 12 2019 in
        let p = Bug_inject.add_decoys rng ~era:2019 ~count:2 base in
        Alcotest.(check int) "two more functions"
          (List.length base.Cast.functions + 2)
          (List.length p.Cast.functions);
        (* decoy allocations are balanced *)
        let calls = Cast.calls_of p in
        let count name = List.length (List.filter (String.equal name) calls) in
        Alcotest.(check int) "malloc = free" (count "malloc") (count "free"));
    Alcotest.test_case "early-era double free is direct" `Quick (fun () ->
        let rng = Rng.create 11 in
        let p = Bug_inject.inject rng ~era:2013 Bug_inject.Double_free (sample_program 11 2013) in
        Alcotest.(check bool) "no threads" true
          (not (List.mem "pthread_create" (Cast.calls_of p))));
  ]

let opencl_tests =
  [
    Alcotest.test_case "kernels sample within sane ranges" `Quick (fun () ->
        let rng = Rng.create 12 in
        List.iter
          (fun suite ->
            let k = Opencl.sample_kernel rng ~suite in
            Alcotest.(check bool) "divergence in [0,1]" true
              (k.Opencl.branch_divergence >= 0.0 && k.Opencl.branch_divergence <= 1.0);
            Alcotest.(check bool) "positive work" true (k.Opencl.work_items > 0))
          Opencl.suites);
    Alcotest.test_case "unknown suite rejected" `Quick (fun () ->
        Alcotest.check_raises "suite" (Invalid_argument "Opencl: unknown suite nope")
          (fun () -> ignore (Opencl.sample_kernel (Rng.create 1) ~suite:"nope")));
    Alcotest.test_case "runtimes are positive for all factors" `Quick (fun () ->
        let rng = Rng.create 13 in
        let k = Opencl.sample_kernel rng ~suite:"rodinia" in
        List.iter
          (fun gpu ->
            Array.iter
              (fun cf ->
                Alcotest.(check bool) "positive" true (Opencl.coarsened_runtime gpu k cf > 0.0))
              Opencl.coarsening_factors)
          Opencl.gpus);
    Alcotest.test_case "best_coarsening is the argmin" `Quick (fun () ->
        let rng = Rng.create 14 in
        let k = Opencl.sample_kernel rng ~suite:"npb" in
        let gpu = List.hd Opencl.gpus in
        let _, best = Opencl.best_coarsening gpu k in
        Array.iter
          (fun cf ->
            Alcotest.(check bool) "minimal" true
              (best <= Opencl.coarsened_runtime gpu k cf +. 1e-9))
          Opencl.coarsening_factors);
    Alcotest.test_case "coarsened_runtime rejects factor 0" `Quick (fun () ->
        let rng = Rng.create 15 in
        let k = Opencl.sample_kernel rng ~suite:"shoc" in
        Alcotest.check_raises "factor"
          (Invalid_argument "Opencl.coarsened_runtime: factor must be >= 1") (fun () ->
            ignore (Opencl.coarsened_runtime (List.hd Opencl.gpus) k 0)));
    Alcotest.test_case "best_device consistent with runtimes" `Quick (fun () ->
        let rng = Rng.create 16 in
        let gpu = List.nth Opencl.gpus 1 in
        for _ = 1 to 20 do
          let k = Opencl.sample_kernel rng ~suite:"polybench" in
          let expected = if Opencl.cpu_runtime k <= Opencl.gpu_runtime gpu k then 0 else 1 in
          Alcotest.(check int) "label" expected (Opencl.best_device gpu k)
        done);
    Alcotest.test_case "both devices win somewhere" `Quick (fun () ->
        let rng = Rng.create 17 in
        let gpu = List.nth Opencl.gpus 1 in
        let labels =
          List.concat_map
            (fun suite ->
              List.init 30 (fun _ -> Opencl.best_device gpu (Opencl.sample_kernel rng ~suite)))
            Opencl.suites
        in
        Alcotest.(check bool) "cpu some" true (List.mem 0 labels);
        Alcotest.(check bool) "gpu some" true (List.mem 1 labels));
    Alcotest.test_case "kernel_to_ast lexes and scales with intensity" `Quick (fun () ->
        let rng = Rng.create 18 in
        let k_small = { (Opencl.sample_kernel rng ~suite:"shoc") with Opencl.comp_intensity = 10.0 } in
        let k_big = { k_small with Opencl.comp_intensity = 200.0 } in
        let toks k = List.length (Lexer.tokenize (Cast.to_string (Opencl.kernel_to_ast (Rng.create 5) k))) in
        Alcotest.(check bool) "more compute, more tokens" true (toks k_big > toks k_small));
  ]

let loops_tests =
  [
    Alcotest.test_case "35 configurations" `Quick (fun () ->
        Alcotest.(check int) "count" 35 (Array.length Loops.configs));
    Alcotest.test_case "config_label/label_config round-trip" `Quick (fun () ->
        Array.iteri
          (fun i cfg ->
            Alcotest.(check int) "label" i (Loops.config_label cfg);
            Alcotest.(check bool) "config" true (Loops.label_config i = cfg))
          Loops.configs);
    Alcotest.test_case "runtime positive on all configs" `Quick (fun () ->
        let rng = Rng.create 19 in
        List.iter
          (fun family ->
            let l = Loops.sample_loop rng ~family in
            Array.iter
              (fun cfg ->
                Alcotest.(check bool) "positive" true (Loops.runtime l cfg > 0.0))
              Loops.configs)
          Loops.families);
    Alcotest.test_case "best_config is the argmin" `Quick (fun () ->
        let rng = Rng.create 20 in
        let l = Loops.sample_loop rng ~family:"saxpy" in
        let _, best = Loops.best_config l in
        Array.iter
          (fun cfg ->
            Alcotest.(check bool) "minimal" true (best <= Loops.runtime l cfg +. 1e-9))
          Loops.configs);
    Alcotest.test_case "dependence distance caps useful VF" `Quick (fun () ->
        let rng = Rng.create 21 in
        let base = Loops.sample_loop rng ~family:"saxpy" in
        let free = { base with Loops.dep_distance = 0; stride = 1 } in
        let bound = { base with Loops.dep_distance = 1; stride = 1 } in
        (* With a distance-1 dependence, vectorizing cannot beat VF=1 by
           the arithmetic term. *)
        let t_free_v8 = Loops.runtime free (8, 1) in
        let t_bound_v8 = Loops.runtime bound (8, 1) in
        Alcotest.(check bool) "dependence hurts" true (t_bound_v8 > t_free_v8));
    Alcotest.test_case "loop_to_ast lexes for every family" `Quick (fun () ->
        let rng = Rng.create 22 in
        List.iter
          (fun family ->
            let l = Loops.sample_loop rng ~family in
            let src = Cast.to_string (Loops.loop_to_ast (Rng.create 1) l) in
            Alcotest.(check bool) "lexes" true (List.length (Lexer.tokenize src) > 0))
          Loops.families);
    Alcotest.test_case "runtime rejects invalid factors" `Quick (fun () ->
        let rng = Rng.create 23 in
        let l = Loops.sample_loop rng ~family:"dot" in
        Alcotest.check_raises "factors"
          (Invalid_argument "Loops.runtime: factors must be >= 1") (fun () ->
            ignore (Loops.runtime l (0, 1))));
  ]

let schedule_tests =
  [
    Alcotest.test_case "throughput positive" `Quick (fun () ->
        let rng = Rng.create 24 in
        List.iter
          (fun net ->
            let w = Schedule.sample_workload rng net in
            let s = Schedule.random_schedule rng in
            Alcotest.(check bool) "positive" true (Schedule.throughput w s > 0.0))
          Schedule.networks);
    Alcotest.test_case "oracle dominates random schedules" `Quick (fun () ->
        let rng = Rng.create 25 in
        let w = Schedule.sample_workload rng Schedule.Bert_base in
        let best = Schedule.oracle rng w in
        for _ = 1 to 50 do
          Alcotest.(check bool) "dominates" true
            (Schedule.throughput w (Schedule.random_schedule rng) <= best +. 1e-9)
        done);
    Alcotest.test_case "mutate changes exactly one knob family" `Quick (fun () ->
        let rng = Rng.create 26 in
        let s = Schedule.random_schedule rng in
        for _ = 1 to 20 do
          let s' = Schedule.mutate rng s in
          let diffs =
            List.length
              (List.filter Fun.id
                 [
                   s.Schedule.tile_m <> s'.Schedule.tile_m;
                   s.Schedule.tile_n <> s'.Schedule.tile_n;
                   s.Schedule.tile_k <> s'.Schedule.tile_k;
                   s.Schedule.unroll <> s'.Schedule.unroll;
                   s.Schedule.vectorize <> s'.Schedule.vectorize;
                   s.Schedule.parallel <> s'.Schedule.parallel;
                 ])
          in
          Alcotest.(check bool) "at most one" true (diffs <= 1)
        done);
    Alcotest.test_case "element width is the last feature component" `Quick (fun () ->
        let rng = Rng.create 27 in
        let w_base = Schedule.sample_workload rng Schedule.Bert_base in
        let w_tiny = { w_base with Schedule.net = Schedule.Bert_tiny } in
        let s = Schedule.random_schedule rng in
        let f_base = Schedule.feature_vector w_base s in
        let f_tiny = Schedule.feature_vector w_tiny s in
        let n = Array.length f_base in
        (* all but the dtype component agree... *)
        Alcotest.(check (array (float 1e-12)))
          "shared prefix" (Array.sub f_base 0 (n - 1)) (Array.sub f_tiny 0 (n - 1));
        Alcotest.(check (float 1e-12)) "base fp32" 4.0 f_base.(n - 1);
        Alcotest.(check (float 1e-12)) "tiny int8" 1.0 f_tiny.(n - 1);
        (* ...and the true throughput differs: that is the drift a model
           trained on one constant dtype cannot extrapolate across. *)
        Alcotest.(check bool) "different truth" true
          (Schedule.throughput w_base s <> Schedule.throughput w_tiny s));
    Alcotest.test_case "network names are distinct" `Quick (fun () ->
        let names = List.map Schedule.network_name Schedule.networks in
        Alcotest.(check int) "distinct" 4 (List.length (List.sort_uniq compare names)));
  ]

let feature_tests =
  [
    Alcotest.test_case "token histogram is a distribution" `Quick (fun () ->
        let vocab = Lexer.Vocab.create ~ident_buckets:8 in
        let tokens = Lexer.tokenize "int x = 1; int y = 2;" in
        let h = Feature.token_histogram ~vocab tokens in
        Alcotest.(check (float 1e-9)) "sums to 1" 1.0 (Array.fold_left ( +. ) 0.0 h));
    Alcotest.test_case "program features have fixed width" `Quick (fun () ->
        let p = sample_program 30 2019 in
        Alcotest.(check int) "dim" Feature.program_feature_dim
          (Array.length (Feature.program_features p)));
    Alcotest.test_case "free-minus-malloc feature sees a leak" `Quick (fun () ->
        let rng = Rng.create 31 in
        let p = Bug_inject.inject rng ~era:2013 Bug_inject.Double_free (sample_program 31 2013) in
        let f = Feature.program_features p in
        (* feature 12 is free count - malloc count; double free => >= 1 *)
        Alcotest.(check bool) "positive" true (f.(12) >= 1.0));
  ]

(* Property: every generated (era, seed) program pretty-prints to
   lexable source whose token stream is deterministic. *)
let prop_generator_lexes =
  QCheck2.Test.make ~name:"generated programs lex deterministically" ~count:40
    QCheck2.Gen.(pair (int_range 0 100_000) (int_range 2010 2030))
    (fun (seed, era) ->
      let program seed =
        let rng = Rng.create seed in
        Generator.generate rng (Generator.style_of_era rng era)
      in
      let toks p = List.map Lexer.token_to_string (Lexer.tokenize (Cast.to_string p)) in
      let a = toks (program seed) and b = toks (program seed) in
      a = b && List.length a > 0)

let prop_injection_lexes =
  QCheck2.Test.make ~name:"every injected program lexes" ~count:40
    QCheck2.Gen.(triple (int_range 0 100_000) (int_range 2010 2030) (int_range 0 7))
    (fun (seed, era, label) ->
      let rng = Rng.create seed in
      let base = Generator.generate rng (Generator.style_of_era rng era) in
      let p = Bug_inject.inject rng ~era (Bug_inject.of_label label) base in
      List.length (Lexer.tokenize (Cast.to_string p)) > 0)

let prop_runtime_models_positive =
  QCheck2.Test.make ~name:"all performance models stay positive and finite" ~count:40
    (QCheck2.Gen.int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let k = Opencl.sample_kernel rng ~suite:(List.nth Opencl.suites (seed mod 7)) in
      let l = Loops.sample_loop rng ~family:(List.nth Loops.families (seed mod 18)) in
      let w = Schedule.sample_workload rng (List.nth Schedule.networks (seed mod 4)) in
      let s = Schedule.random_schedule rng in
      let ok v = Float.is_finite v && v > 0.0 in
      List.for_all ok
        [
          Opencl.cpu_runtime k;
          Opencl.gpu_runtime (List.nth Opencl.gpus (seed mod 4)) k;
          Loops.runtime l (Loops.label_config (seed mod 35));
          Schedule.throughput w s;
        ])

let synth_properties =
  List.map QCheck_alcotest.to_alcotest
    [ prop_generator_lexes; prop_injection_lexes; prop_runtime_models_positive ]

let suite =
  [
    ("synth.properties", synth_properties);
    ("synth.cast", cast_tests);
    ("synth.lexer", lexer_tests);
    ("synth.vocab", vocab_tests);
    ("synth.bug_inject", bug_tests);
    ("synth.opencl", opencl_tests);
    ("synth.loops", loops_tests);
    ("synth.schedule", schedule_tests);
    ("synth.feature", feature_tests);
  ]
