(* Tests for the prom_ml substrate: dataset handling and every model
   family learns a problem it should be able to learn. *)

open Prom_linalg
open Prom_ml

let blob rng ~cx ~cy ~label n =
  Array.init n (fun _ ->
      ( [| Rng.gaussian rng ~mu:cx ~sigma:0.5; Rng.gaussian rng ~mu:cy ~sigma:0.5 |],
        label ))

(* A linearly separable 3-class dataset every classifier should ace. *)
let three_blobs seed =
  let rng = Rng.create seed in
  let samples =
    Array.concat
      [
        blob rng ~cx:0.0 ~cy:0.0 ~label:0 60;
        blob rng ~cx:4.0 ~cy:0.0 ~label:1 60;
        blob rng ~cx:0.0 ~cy:4.0 ~label:2 60;
      ]
  in
  Rng.shuffle rng samples;
  Dataset.create (Array.map fst samples) (Array.map snd samples)

let dataset_tests =
  [
    Alcotest.test_case "create validates lengths" `Quick (fun () ->
        Alcotest.check_raises "mismatch"
          (Invalid_argument "Dataset.create: feature/label length mismatch") (fun () ->
            ignore (Dataset.create [| [| 1.0 |] |] [| 1; 2 |])));
    Alcotest.test_case "create validates rectangularity" `Quick (fun () ->
        Alcotest.check_raises "ragged" (Invalid_argument "Dataset.create: ragged features")
          (fun () -> ignore (Dataset.create [| [| 1.0 |]; [| 1.0; 2.0 |] |] [| 0; 1 |])));
    Alcotest.test_case "n_classes from labels" `Quick (fun () ->
        let d = Dataset.create [| [| 0.0 |]; [| 1.0 |] |] [| 0; 4 |] in
        Alcotest.(check int) "classes" 5 (Dataset.n_classes d));
    Alcotest.test_case "split_at partitions sizes" `Quick (fun () ->
        let d = three_blobs 1 in
        let a, b = Dataset.split_at d ~ratio:0.25 in
        Alcotest.(check int) "prefix" 45 (Dataset.length a);
        Alcotest.(check int) "suffix" 135 (Dataset.length b));
    Alcotest.test_case "train_test_split covers everything" `Quick (fun () ->
        let d = three_blobs 2 in
        let tr, te = Dataset.train_test_split (Rng.create 1) d ~test_ratio:0.2 in
        Alcotest.(check int) "total" 180 (Dataset.length tr + Dataset.length te));
    Alcotest.test_case "k_folds covers every sample exactly once" `Quick (fun () ->
        let d = three_blobs 3 in
        let folds = Dataset.k_folds (Rng.create 2) d 5 in
        let total = Array.fold_left (fun acc (_, fold) -> acc + Dataset.length fold) 0 folds in
        Alcotest.(check int) "fold sizes" (Dataset.length d) total;
        Array.iter
          (fun (rest, fold) ->
            Alcotest.(check int) "rest+fold" (Dataset.length d)
              (Dataset.length rest + Dataset.length fold))
          folds);
    Alcotest.test_case "append concatenates" `Quick (fun () ->
        let d = three_blobs 4 in
        Alcotest.(check int) "double" 360 (Dataset.length (Dataset.append d d)));
    Alcotest.test_case "filter keeps matching samples" `Quick (fun () ->
        let d = three_blobs 5 in
        let only0 = Dataset.filter (fun _ y -> y = 0) d in
        Alcotest.(check bool) "nonempty" true (Dataset.length only0 > 0);
        Array.iter (fun y -> Alcotest.(check int) "label" 0 y) only0.y);
    Alcotest.test_case "scaler standardizes train features" `Quick (fun () ->
        let d = three_blobs 6 in
        let sc = Dataset.Scaler.fit d in
        let z = Dataset.Scaler.transform_dataset sc d in
        let col0 = Array.map (fun v -> v.(0)) z.x in
        Alcotest.(check bool) "mean approx 0" true (abs_float (Stats.mean col0) < 1e-9));
    Alcotest.test_case "scaler is dimension-safe" `Quick (fun () ->
        let d = three_blobs 7 in
        let sc = Dataset.Scaler.fit d in
        Alcotest.check_raises "dim" (Invalid_argument "Scaler.transform: dimension mismatch")
          (fun () -> ignore (Dataset.Scaler.transform sc [| 1.0 |])));
  ]

let check_proba_classifier name (c : Model.classifier) (d : int Dataset.t) min_acc =
  let acc = Model.accuracy c d in
  Alcotest.(check bool)
    (Printf.sprintf "%s accuracy %.2f >= %.2f" name acc min_acc)
    true (acc >= min_acc);
  (* Probability vectors are well-formed on every sample. *)
  Array.iter
    (fun x ->
      let p = c.Model.predict_proba x in
      Alcotest.(check int) "length" c.Model.n_classes (Array.length p);
      Alcotest.(check bool) "sums to 1" true (abs_float (Vec.sum p -. 1.0) < 1e-6);
      Alcotest.(check bool) "non-negative" true (Array.for_all (fun q -> q >= -1e-12) p))
    (Array.sub d.x 0 (min 10 (Dataset.length d)))

let classifier_tests =
  let learn name train min_acc =
    Alcotest.test_case (name ^ " learns three blobs") `Quick (fun () ->
        let d = three_blobs 10 in
        let tr, te = Dataset.split_at d ~ratio:0.8 in
        let c = train tr in
        check_proba_classifier name c te min_acc)
  in
  [
    learn "logistic" (fun d -> Logistic.train d) 0.95;
    learn "mlp" (fun d -> Mlp.train d) 0.95;
    learn "decision-tree" (fun d -> Decision_tree.classifier d) 0.9;
    learn "random-forest" (fun d -> Random_forest.train d) 0.9;
    learn "gradient-boosting" (fun d -> Gradient_boosting.train d) 0.9;
    learn "svm" (fun d -> Svm.train d) 0.9;
    learn "knn" (fun d -> Knn.train d) 0.9;
    learn "naive-bayes" (fun d -> Naive_bayes.train d) 0.9;
    Alcotest.test_case "svm with rbf kernel learns xor-ish rings" `Quick (fun () ->
        (* concentric data: not linearly separable *)
        let rng = Rng.create 20 in
        let ring r label n =
          Array.init n (fun _ ->
              let t = Rng.uniform rng ~lo:0.0 ~hi:(2.0 *. Float.pi) in
              let rr = r +. Rng.gaussian rng ~mu:0.0 ~sigma:0.1 in
              ([| rr *. cos t; rr *. sin t |], label))
        in
        let samples = Array.append (ring 0.5 0 80) (ring 2.0 1 80) in
        Rng.shuffle rng samples;
        let d = Dataset.create (Array.map fst samples) (Array.map snd samples) in
        let tr, te = Dataset.split_at d ~ratio:0.8 in
        let params =
          { Svm.default_params with Svm.kernel = Svm.Rbf { gamma = 1.0; n_components = 60 } }
        in
        let c = Svm.train ~params tr in
        Alcotest.(check bool) "acc > 0.8" true (Model.accuracy c te > 0.8));
    Alcotest.test_case "logistic warm start improves on new region" `Quick (fun () ->
        let d = three_blobs 11 in
        let m0 = Logistic.train d in
        let rng = Rng.create 12 in
        let extra_samples = blob rng ~cx:8.0 ~cy:8.0 ~label:1 40 in
        let extra = Dataset.create (Array.map fst extra_samples) (Array.map snd extra_samples) in
        let m1 = Logistic.train ~init:m0 (Dataset.append d extra) in
        Alcotest.(check bool) "new region learned" true (Model.accuracy m1 extra > 0.9));
    Alcotest.test_case "constant classifier" `Quick (fun () ->
        let c = Model.constant_classifier ~n_classes:3 1 in
        Alcotest.(check int) "predict" 1 (Model.predict c [| 0.0 |]));
    Alcotest.test_case "constant classifier rejects bad class" `Quick (fun () ->
        Alcotest.check_raises "range"
          (Invalid_argument "Model.constant_classifier: class out of range") (fun () ->
            ignore (Model.constant_classifier ~n_classes:2 5)));
  ]

(* Regression: y = 2 x0 - 3 x1 + 1 + noise. *)
let linear_problem seed n =
  let rng = Rng.create seed in
  let x = Array.init n (fun _ -> [| Rng.uniform rng ~lo:(-2.0) ~hi:2.0; Rng.uniform rng ~lo:(-2.0) ~hi:2.0 |]) in
  let y =
    Array.map
      (fun v -> (2.0 *. v.(0)) -. (3.0 *. v.(1)) +. 1.0 +. Rng.gaussian rng ~mu:0.0 ~sigma:0.01)
      x
  in
  Dataset.create x y

let regressor_tests =
  [
    Alcotest.test_case "linreg recovers coefficients" `Quick (fun () ->
        let d = linear_problem 30 200 in
        let m = Linreg.train d in
        match Linreg.coefficients m with
        | Some (w, b) ->
            Alcotest.(check (float 0.05)) "w0" 2.0 w.(0);
            Alcotest.(check (float 0.05)) "w1" (-3.0) w.(1);
            Alcotest.(check (float 0.05)) "b" 1.0 b
        | None -> Alcotest.fail "no coefficients");
    Alcotest.test_case "linreg mse small on linear data" `Quick (fun () ->
        let d = linear_problem 31 200 in
        Alcotest.(check bool) "mse" true (Model.mse (Linreg.train d) d < 0.01));
    Alcotest.test_case "mlp regressor fits nonlinear curve" `Quick (fun () ->
        let rng = Rng.create 32 in
        let x = Array.init 200 (fun _ -> [| Rng.uniform rng ~lo:(-2.0) ~hi:2.0 |]) in
        let y = Array.map (fun v -> sin v.(0)) x in
        let d = Dataset.create x y in
        let m =
          Mlp.train_regressor
            ~params:{ Mlp.default_params with Mlp.hidden = [ 16 ]; epochs = 400 }
            d
        in
        Alcotest.(check bool) "mse < 0.05" true (Model.mse m d < 0.05));
    Alcotest.test_case "gradient boosting regressor beats the mean" `Quick (fun () ->
        let d = linear_problem 33 300 in
        let m = Gradient_boosting.train_regressor d in
        let mean_mse = Stats.variance d.y in
        Alcotest.(check bool) "mse < variance/4" true (Model.mse m d < mean_mse /. 4.0));
    Alcotest.test_case "knn regressor interpolates" `Quick (fun () ->
        let d =
          Dataset.create [| [| 0.0 |]; [| 1.0 |]; [| 2.0 |]; [| 3.0 |] |] [| 0.0; 1.0; 2.0; 3.0 |]
        in
        let v = Knn.predict_value ~k:2 d [| 1.4 |] in
        Alcotest.(check (float 1e-9)) "avg of 1,2" 1.5 v);
    Alcotest.test_case "random forest regressor runs" `Quick (fun () ->
        let d = linear_problem 34 100 in
        let m = Random_forest.train_regressor d in
        Alcotest.(check bool) "finite" true (Float.is_finite (m.Model.predict d.x.(0))));
  ]

let tree_tests =
  [
    Alcotest.test_case "tree splits a separable problem" `Quick (fun () ->
        let d =
          Dataset.create
            [| [| 0.0 |]; [| 0.1 |]; [| 0.9 |]; [| 1.0 |] |]
            [| 0; 0; 1; 1 |]
        in
        let t =
          Decision_tree.fit_classification
            ~params:{ Decision_tree.default_split_params with min_samples_leaf = 1; min_samples_split = 2 }
            d
        in
        Alcotest.(check bool) "has a split" true (Decision_tree.depth t >= 1);
        let p0 = Decision_tree.leaf_value t [| 0.05 |] in
        Alcotest.(check (float 1e-9)) "pure left leaf" 1.0 p0.(0));
    Alcotest.test_case "max_depth bounds the tree" `Quick (fun () ->
        let d = three_blobs 40 in
        let t =
          Decision_tree.fit_classification
            ~params:{ Decision_tree.default_split_params with max_depth = 2 }
            d
        in
        Alcotest.(check bool) "depth <= 2" true (Decision_tree.depth t <= 2));
    Alcotest.test_case "pure node becomes a leaf" `Quick (fun () ->
        let d = Dataset.create [| [| 0.0 |]; [| 1.0 |]; [| 2.0 |] |] [| 1; 1; 1 |] in
        let t = Decision_tree.fit_classification d in
        Alcotest.(check int) "single leaf" 1 (Decision_tree.n_leaves t));
    Alcotest.test_case "regression tree fits a step" `Quick (fun () ->
        let d =
          Dataset.create
            [| [| 0.0 |]; [| 0.2 |]; [| 0.8 |]; [| 1.0 |] |]
            [| 0.0; 0.0; 5.0; 5.0 |]
        in
        let t =
          Decision_tree.fit_regression
            ~params:{ Decision_tree.default_split_params with min_samples_leaf = 1; min_samples_split = 2 }
            d
        in
        Alcotest.(check (float 1e-9)) "left" 0.0 (Decision_tree.leaf_value t [| 0.1 |]);
        Alcotest.(check (float 1e-9)) "right" 5.0 (Decision_tree.leaf_value t [| 0.9 |]));
  ]

let kmeans_tests =
  [
    Alcotest.test_case "kmeans separates two blobs" `Quick (fun () ->
        let rng = Rng.create 50 in
        let pts =
          Array.append
            (Array.init 50 (fun _ -> [| Rng.gaussian rng ~mu:0.0 ~sigma:0.3; 0.0 |]))
            (Array.init 50 (fun _ -> [| Rng.gaussian rng ~mu:5.0 ~sigma:0.3; 0.0 |]))
        in
        let km = Kmeans.fit (Rng.create 51) pts ~k:2 in
        let a = km.Kmeans.assignments.(0) in
        (* Every sample from blob 1 shares cluster 0's assignment, etc. *)
        for i = 0 to 49 do
          Alcotest.(check int) "first blob" a km.Kmeans.assignments.(i)
        done;
        for i = 50 to 99 do
          Alcotest.(check bool) "second blob" true (km.Kmeans.assignments.(i) <> a)
        done);
    Alcotest.test_case "assign matches nearest centroid" `Quick (fun () ->
        let pts = [| [| 0.0 |]; [| 10.0 |] |] in
        let km = Kmeans.fit (Rng.create 52) pts ~k:2 in
        let c_of x = Kmeans.assign km [| x |] in
        Alcotest.(check int) "near zero" km.Kmeans.assignments.(0) (c_of 0.5);
        Alcotest.(check int) "near ten" km.Kmeans.assignments.(1) (c_of 9.0));
    Alcotest.test_case "inertia decreases with more clusters" `Quick (fun () ->
        let rng = Rng.create 53 in
        let pts = Array.init 60 (fun _ -> [| Rng.uniform rng ~lo:0.0 ~hi:10.0 |]) in
        let i2 = (Kmeans.fit (Rng.create 54) pts ~k:2).Kmeans.inertia in
        let i6 = (Kmeans.fit (Rng.create 54) pts ~k:6).Kmeans.inertia in
        Alcotest.(check bool) "monotone-ish" true (i6 <= i2));
    Alcotest.test_case "fit rejects bad k" `Quick (fun () ->
        Alcotest.check_raises "k" (Invalid_argument "Kmeans.fit: k out of range") (fun () ->
            ignore (Kmeans.fit (Rng.create 1) [| [| 0.0 |] |] ~k:2)));
    Alcotest.test_case "gap statistic finds two clusters" `Quick (fun () ->
        let rng = Rng.create 55 in
        let pts =
          Array.append
            (Array.init 40 (fun _ ->
                 [| Rng.gaussian rng ~mu:0.0 ~sigma:0.2; Rng.gaussian rng ~mu:0.0 ~sigma:0.2 |]))
            (Array.init 40 (fun _ ->
                 [| Rng.gaussian rng ~mu:6.0 ~sigma:0.2; Rng.gaussian rng ~mu:6.0 ~sigma:0.2 |]))
        in
        let r = Gap_statistic.select (Rng.create 56) pts ~k_min:2 ~k_max:6 in
        Alcotest.(check bool) "k small" true (r.Gap_statistic.best_k <= 3));
    Alcotest.test_case "gap statistic validates range" `Quick (fun () ->
        Alcotest.check_raises "range" (Invalid_argument "Gap_statistic.select: bad range")
          (fun () ->
            ignore
              (Gap_statistic.select (Rng.create 1) [| [| 0.0 |]; [| 1.0 |] |] ~k_min:3 ~k_max:2)));
  ]

let prop_forest_probas =
  QCheck2.Test.make ~name:"random forest probabilities are a distribution" ~count:20
    QCheck2.Gen.(pair (int_range 0 1000) (int_range 3 12))
    (fun (seed, k) ->
      let d = three_blobs seed in
      let c = Random_forest.train ~params:{ Random_forest.default_params with n_trees = k } d in
      let p = c.Model.predict_proba d.x.(0) in
      abs_float (Vec.sum p -. 1.0) < 1e-6)

let properties = List.map QCheck_alcotest.to_alcotest [ prop_forest_probas ]

let suite =
  [
    ("ml.dataset", dataset_tests);
    ("ml.classifiers", classifier_tests);
    ("ml.regressors", regressor_tests);
    ("ml.trees", tree_tests);
    ("ml.kmeans", kmeans_tests);
    ("ml.properties", properties);
  ]
