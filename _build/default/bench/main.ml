(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Tables 2-3, Figures 7-13) on the synthetic substrate, and
   closes with bechamel microbenchmarks of PROM's runtime overhead
   (paper Sec. 7.6). Run everything with [dune exec bench/main.exe];
   pass section names (e.g. [table2 fig8 overhead]) to run a subset. *)

open Prom
open Prom_tasks

let seed = 2025
let section_header title = Printf.printf "\n=== %s ===\n%!" title

let print_violin label samples =
  Format.printf "  %-24s %a@." label Metrics.pp_violin (Metrics.violin_of samples)

let print_metrics label (m : Detection_metrics.t) =
  Format.printf "  %-24s %a@." label Detection_metrics.pp m

(* The full suite is expensive; run it once and share across sections. *)
let suite = lazy (Suite.run ~scale:Suite.Full ~seed ())

let by_case results =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (r : Case_study.result) ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt tbl r.case) in
      Hashtbl.replace tbl r.case (r :: cur))
    results;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, List.rev v) :: acc) tbl [])

let table2 () =
  section_header "Table 2: summary of main evaluation results";
  let s = Lazy.force suite in
  let design, deploy, prom, detection = s.Suite.table2 in
  Printf.printf
    "  Perf-to-oracle: training %.3f | deployment %.3f | PROM-assisted %.3f\n" design
    deploy prom;
  Format.printf "  PROM detection (avg over C1-C4 x models): %a@." Detection_metrics.pp
    detection;
  Printf.printf
    "  (paper: 0.836 | 0.544 | 0.807; detection acc 86.8%% prec 86.0%% recall 96.2%% f1 90.8%%)\n"

let table3 () =
  section_header "Table 3: C5 DNN code generation - perf-to-oracle by BERT variant";
  let s = Lazy.force suite in
  Format.printf "%a@." Dnn_codegen.pp_result s.Suite.c5;
  Printf.printf
    "  (paper native: base 0.845 tiny 0.224 medium 0.668 large 0.703; PROM: 0.794/0.810/0.808)\n"

let fig7 () =
  section_header "Figure 7: design vs deployment performance distributions";
  let s = Lazy.force suite in
  List.iter
    (fun (case, results) ->
      Printf.printf "  -- %s --\n" case;
      List.iter
        (fun (r : Case_study.result) ->
          print_violin (r.model_name ^ " design") r.design_perf;
          print_violin (r.model_name ^ " deploy") r.deploy_perf)
        results)
    (by_case (Lazy.force suite).Suite.classification_results);
  ignore s

let fig8 () =
  section_header "Figure 8: PROM drift-detection performance per case study and model";
  let s = Lazy.force suite in
  List.iter
    (fun (case, results) ->
      Printf.printf "  -- %s --\n" case;
      List.iter
        (fun (r : Case_study.result) -> print_metrics r.model_name r.detection)
        results)
    (by_case s.Suite.classification_results)

let fig9 () =
  section_header "Figure 9: incremental learning restores deployment performance";
  let s = Lazy.force suite in
  List.iter
    (fun (case, results) ->
      Printf.printf "  -- %s --\n" case;
      List.iter
        (fun (r : Case_study.result) ->
          print_violin (r.model_name ^ " native") r.deploy_perf;
          print_violin (r.model_name ^ " +PROM") r.prom_perf;
          Printf.printf "      (relabeled %d of %d flagged)\n" r.relabeled
            (int_of_float
               (r.flagged_fraction *. float_of_int (Array.length r.deploy_perf))))
        results)
    (by_case s.Suite.classification_results)

let geomean_f1 results pick =
  let f1s =
    List.filter_map
      (fun (r : Case_study.result) ->
        match pick r with
        | Some (m : Detection_metrics.t) ->
            Some (Stdlib.max 0.01 m.Detection_metrics.f1)
        | None -> None)
      results
  in
  Prom_linalg.Stats.geomean (Array.of_list f1s)

let fig10 () =
  section_header "Figure 10: geomean F1 vs baseline CP methods (C1-C4)";
  let s = Lazy.force suite in
  let results = s.Suite.classification_results in
  let prom_f1 = geomean_f1 results (fun r -> Some r.detection) in
  Printf.printf "  %-12s %.3f\n" "PROM" prom_f1;
  List.iter
    (fun name ->
      let f1 = geomean_f1 results (fun r -> List.assoc_opt name r.baseline_metrics) in
      Printf.printf "  %-12s %.3f\n" name f1)
    [ "tesseract"; "rise"; "naive-cp" ];
  Printf.printf "  (paper: PROM > TESSERACT (+17.6%%) > RISE > naive CP)\n"

let fig11 () =
  section_header "Figure 11: individual nonconformity functions vs the ensemble";
  let s = Lazy.force suite in
  List.iter
    (fun (case, results) ->
      Printf.printf "  -- %s --\n" case;
      let avg name pick =
        let vals = List.map pick results in
        Printf.printf "    %-8s f1=%.3f\n" name
          (Prom_linalg.Stats.mean (Array.of_list vals))
      in
      avg "ensemble" (fun (r : Case_study.result) -> r.detection.Detection_metrics.f1);
      List.iter
        (fun fn_name ->
          avg fn_name (fun r ->
              match List.assoc_opt fn_name r.per_function with
              | Some m -> m.Detection_metrics.f1
              | None -> 0.0))
        [ "LAC"; "TopK"; "APS"; "RAPS" ])
    (by_case s.Suite.classification_results)

let fig12 () =
  section_header "Figure 12: training vs incremental-learning overhead (seconds)";
  let s = Lazy.force suite in
  List.iter
    (fun (case, results) ->
      let mean f =
        Prom_linalg.Stats.mean
          (Array.of_list (List.map f results))
      in
      Printf.printf "  %-28s initial %.2fs | incremental %.2fs\n" case
        (mean (fun (r : Case_study.result) -> r.train_time))
        (mean (fun r -> r.retrain_time)))
    (by_case s.Suite.classification_results);
  Printf.printf "  (paper: initial training hours-to-a-day; incremental < 1 hour)\n"

(* Sensitivity analyses (Figure 13) train one model per sweep and vary
   only the detector configuration. *)

let sensitivity_setup () =
  let scenario = Loop_vectorization.scenario ~loops_per_family:40 ~seed () in
  let spec = List.nth Loop_vectorization.models 2 (* MLP *) in
  let open Prom_ml in
  let raw = Array.map spec.Case_study.encode scenario.Case_study.train_w in
  let scaler = Dataset.Scaler.fit (Dataset.create raw scenario.Case_study.train_y) in
  let encode w = Dataset.Scaler.transform scaler (spec.Case_study.encode w) in
  let pool =
    Dataset.create (Array.map (Dataset.Scaler.transform scaler) raw)
      scenario.Case_study.train_y
  in
  let train, calibration = Framework.data_partitioning ~calibration_ratio:0.25 ~seed pool in
  let model = spec.Case_study.trainer.Model.train train in
  let drift_x = Array.map encode scenario.Case_study.drift_w in
  let mispredicted =
    Array.mapi
      (fun i x ->
        Metrics.mispredicted
          ~perf:(scenario.Case_study.perf scenario.Case_study.drift_w.(i)
                   (Model.predict model x)))
      drift_x
  in
  (model, calibration, drift_x, mispredicted)

let metrics_for detector drift_x mispredicted =
  let flagged =
    Array.map (fun x -> snd (Detector.Classification.predict detector x)) drift_x
  in
  Detection_metrics.compute ~flagged ~mispredicted

let fig13a () =
  section_header "Figure 13a: sensitivity to the significance threshold (C2, MLP)";
  let model, calibration, drift_x, mispredicted = sensitivity_setup () in
  List.iter
    (fun epsilon ->
      let config = { Config.default with Config.epsilon } in
      let det =
        Detector.Classification.create ~config ~model ~feature_of:Fun.id calibration
      in
      let m = metrics_for det drift_x mispredicted in
      Format.printf "  epsilon=%.2f %a@." epsilon Detection_metrics.pp m)
    [ 0.02; 0.05; 0.1; 0.2; 0.3; 0.5 ]

let fig13c () =
  section_header "Figure 13c: sensitivity to the Gaussian scale parameter (C2, MLP)";
  let model, calibration, drift_x, mispredicted = sensitivity_setup () in
  List.iter
    (fun gaussian_c ->
      let config = { Config.default with Config.gaussian_c } in
      let det =
        Detector.Classification.create ~config ~model ~feature_of:Fun.id calibration
      in
      let m = metrics_for det drift_x mispredicted in
      Format.printf "  c=%.1f %a@." gaussian_c Detection_metrics.pp m)
    [ 0.5; 1.0; 2.0; 3.0; 4.0; 6.0 ]

let fig13b () =
  section_header "Figure 13b: sensitivity to the cluster count (C5 regression)";
  (* Rebuild the C5 detector with forced cluster counts and measure
     detection on BERT-medium samples. *)
  let open Prom_ml in
  let open Prom_synth in
  let rng = Prom_linalg.Rng.create seed in
  let pairs net n =
    Array.init n (fun _ ->
        let w = Schedule.sample_workload rng net in
        (w, Schedule.random_schedule rng))
  in
  let base = pairs Schedule.Bert_base 360 in
  let feats = Array.map (fun (w, s) -> Schedule.feature_vector w s) base in
  let scaler = Dataset.Scaler.fit (Dataset.create feats (Array.map (fun _ -> 0.0) base)) in
  let encode (w, s) =
    let z = Dataset.Scaler.transform scaler (Schedule.feature_vector w s) in
    let tokens =
      Array.mapi
        (fun i v ->
          let b = Stdlib.max 0 (Stdlib.min 7 (int_of_float ((v +. 2.0) *. 2.0))) in
          1 + (i * 8) + b)
        z
    in
    Prom_nn.Encoding.Seq.encode { Prom_nn.Encoding.Seq.max_len = 13; vocab = 1 + (13 * 8) } tokens
  in
  let target (w, s) = log (Schedule.throughput w s) in
  let data = Dataset.create (Array.map encode base) (Array.map target base) in
  let train, calibration = Framework.data_partitioning ~calibration_ratio:0.2 ~seed data in
  let model = Gradient_boosting.train_regressor train in
  let test = pairs Schedule.Bert_medium 120 in
  let test_x = Array.map encode test in
  let mispredicted =
    Array.mapi
      (fun i x ->
        abs_float (model.Model.predict x -. target test.(i)) > log 1.2)
      test_x
  in
  List.iter
    (fun k ->
      let det =
        Detector.Regression.create ~n_clusters:k ~model ~feature_of:Fun.id ~seed
          calibration
      in
      let flagged = Array.map (fun x -> snd (Detector.Regression.predict det x)) test_x in
      let m = Detection_metrics.compute ~flagged ~mispredicted in
      Format.printf "  k=%-2d %a@." k Detection_metrics.pp m)
    [ 2; 4; 6; 8; 10; 12 ]

let fig13d () =
  section_header "Figure 13d: coverage deviation across case studies";
  let s = Lazy.force suite in
  List.iter
    (fun (case, results) ->
      let devs =
        List.map
          (fun (r : Case_study.result) -> r.coverage.Assessment.deviation)
          results
      in
      let arr = Array.of_list devs in
      Printf.printf "  %-28s mean dev %.3f (min %.3f max %.3f)\n" case
        (Prom_linalg.Stats.mean arr)
        (Array.fold_left min arr.(0) arr)
        (Array.fold_left max arr.(0) arr))
    (by_case s.Suite.classification_results);
  Printf.printf "  C5 (regression)               dev %.3f\n"
    (Lazy.force suite).Suite.c5.Dnn_codegen.coverage.Assessment.deviation;
  Printf.printf "  (paper: geomean 2.5%%, thread coarsening 4.4%%)\n"

(* Runtime overhead (paper Sec. 7.6): bechamel microbenchmarks of the
   per-sample detection cost. *)
let overhead () =
  section_header "Runtime overhead: bechamel microbenchmarks (Sec. 7.6)";
  let open Prom_ml in
  let scenario = Thread_coarsening.scenario ~kernels_per_suite:110 ~seed () in
  let spec = List.nth Thread_coarsening.models 0 in
  let raw = Array.map spec.Case_study.encode scenario.Case_study.train_w in
  let scaler = Dataset.Scaler.fit (Dataset.create raw scenario.Case_study.train_y) in
  let pool =
    Dataset.create (Array.map (Dataset.Scaler.transform scaler) raw)
      scenario.Case_study.train_y
  in
  let train, calibration = Framework.data_partitioning ~calibration_ratio:0.25 ~seed pool in
  let model = spec.Case_study.trainer.Model.train train in
  let det = Detector.Classification.create ~model ~feature_of:Fun.id calibration in
  let sample =
    Dataset.Scaler.transform scaler (spec.Case_study.encode scenario.Case_study.drift_w.(0))
  in
  let open Bechamel in
  let test_eval =
    Test.make ~name:"detector-evaluate" (Staged.stage (fun () ->
        ignore (Detector.Classification.evaluate det sample)))
  in
  let test_predict =
    Test.make ~name:"model-predict-proba" (Staged.stage (fun () ->
        ignore (model.Model.predict_proba sample)))
  in
  let test_sets =
    Test.make ~name:"prediction-sets" (Staged.stage (fun () ->
        ignore (Detector.Classification.prediction_sets det sample)))
  in
  let benchmark test =
    let instances = [ Toolkit.Instance.monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:(Some 500) () in
    let raw = Benchmark.all cfg instances test in
    let results =
      Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| "run" |])
        Toolkit.Instance.monotonic_clock raw
    in
    Hashtbl.iter
      (fun name result ->
        match Analyze.OLS.estimates result with
        | Some [ est ] -> Printf.printf "  %-24s %.1f ns/call\n" name est
        | _ -> Printf.printf "  %-24s (no estimate)\n" name)
      results
  in
  List.iter benchmark [ test_eval; test_predict; test_sets ];
  Printf.printf "  (paper: scores < 10 ms, drift detection < 2 ms on a low-end laptop)\n"

(* The paper's motivating study (Fig. 1a): a binary vulnerability
   detector trained on 2012-2014 samples, evaluated on successive future
   time windows. Half of each window's programs carry an injected bug. *)
let fig1 () =
  section_header "Figure 1a: data drift degrades a vulnerability detector over time";
  let open Prom_ml in
  let open Prom_synth in
  let open Prom_nn in
  let spec = Prom_tasks.Encoders.seq_spec ~max_len:64 ~extra:0 in
  let rng = Prom_linalg.Rng.create seed in
  let sample era =
    let style = Generator.style_of_era rng era in
    let base = Generator.generate rng style in
    if Prom_linalg.Rng.bool rng then
      let cwe = Prom_linalg.Rng.choice rng (Array.of_list Bug_inject.all) in
      (Prom_tasks.Encoders.pack_program spec ~prefix:[] (Bug_inject.inject rng ~era cwe base), 1)
    else
      (* Benign samples carry decoy helpers using the same APIs, so the
         detector must recognize patterns rather than vocabulary. *)
      let n = 1 + Prom_linalg.Rng.int rng 2 in
      ( Prom_tasks.Encoders.pack_program spec ~prefix:[]
          (Bug_inject.add_decoys rng ~era ~count:n base),
        0 )
  in
  let window eras n =
    let samples = Array.init n (fun i -> sample (List.nth eras (i mod List.length eras))) in
    Dataset.create (Array.map fst samples) (Array.map snd samples)
  in
  let train = window [ 2012; 2013; 2014 ] 360 in
  let params =
    { (Seq_model.default_params spec) with Seq_model.arch = Attention; epochs = 25;
      hidden = 16; learning_rate = 0.005 }
  in
  let model = Seq_model.train ~params train in
  let f1_on d =
    let tp = ref 0 and fp = ref 0 and fn = ref 0 in
    Array.iteri
      (fun i x ->
        match (Model.predict model x, d.Dataset.y.(i)) with
        | 1, 1 -> incr tp
        | 1, 0 -> incr fp
        | 0, 1 -> incr fn
        | _ -> ())
      d.Dataset.x;
    let p = float_of_int !tp /. float_of_int (Stdlib.max 1 (!tp + !fp)) in
    let r = float_of_int !tp /. float_of_int (Stdlib.max 1 (!tp + !fn)) in
    if p +. r = 0.0 then 0.0 else 2.0 *. p *. r /. (p +. r)
  in
  List.iter
    (fun (label, eras) ->
      Printf.printf "  %-12s F1 = %.3f
" label (f1_on (window eras 120)))
    [
      ("2012-2014", [ 2012; 2013; 2014 ]);
      ("2015-2016", [ 2015; 2016 ]);
      ("2017-2018", [ 2017; 2018 ]);
      ("2019-2020", [ 2019; 2020 ]);
      ("2021-2023", [ 2021; 2022; 2023 ]);
    ];
  Printf.printf "  (paper: F1 > 0.8 in-window, < 0.3 on future windows)\n"

(* Ablation of the design choices DESIGN.md calls out, on the C2/MLP
   setup: each variant removes one component of the detector. *)
let ablation () =
  section_header "Ablation: PROM components on C2 (MLP)";
  let model, calibration, drift_x, mispredicted = sensitivity_setup () in
  let run label config committee =
    let det =
      Detector.Classification.create ~config ~committee ~model ~feature_of:Fun.id
        calibration
    in
    let m = metrics_for det drift_x mispredicted in
    Format.printf "  %-34s %a@." label Detection_metrics.pp m
  in
  let default_committee = Nonconformity.default_committee in
  run "full detector (default)" Config.default default_committee;
  run "no distance test, credibility only"
    { Config.default with Config.decision_rule = Config.Credibility_only }
    default_committee;
  run "no adaptive weighting (w = 1)"
    { Config.default with Config.temperature = 1e12 }
    default_committee;
  run "full calibration set (no subset)"
    { Config.default with Config.select_ratio = 1.0; select_all_below = max_int }
    default_committee;
  run "strict majority voting"
    { Config.default with Config.vote_fraction = 0.5 }
    default_committee;
  run "single expert (LAC)" Config.default [ Nonconformity.lac ];
  run "extended committee (+Margin,+Entropy)" Config.default
    Nonconformity.extended_committee

let sections =
  [
    ("table2", table2);
    ("fig1", fig1);
    ("ablation", ablation);
    ("table3", table3);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10", fig10);
    ("fig11", fig11);
    ("fig12", fig12);
    ("fig13a", fig13a);
    ("fig13b", fig13b);
    ("fig13c", fig13c);
    ("fig13d", fig13d);
    ("overhead", overhead);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst sections
  in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown section %S; available: %s\n" name
            (String.concat ", " (List.map fst sections));
          exit 1)
    requested;
  Printf.printf "\nTotal bench time: %.1fs\n" (Unix.gettimeofday () -. t0)
