type t = {
  accuracy : float;
  precision : float;
  recall : float;
  f1 : float;
  false_positive_rate : float;
  false_negative_rate : float;
  n : int;
}

let compute ~flagged ~mispredicted =
  let n = Array.length flagged in
  if n <> Array.length mispredicted then
    invalid_arg "Detection_metrics.compute: length mismatch";
  if n = 0 then invalid_arg "Detection_metrics.compute: empty input";
  let tp = ref 0 and fp = ref 0 and tn = ref 0 and fn = ref 0 in
  Array.iteri
    (fun i f ->
      match (f, mispredicted.(i)) with
      | true, true -> incr tp
      | true, false -> incr fp
      | false, false -> incr tn
      | false, true -> incr fn)
    flagged;
  let fl = float_of_int in
  let ratio num den ~empty = if den = 0 then empty else fl num /. fl den in
  let precision = ratio !tp (!tp + !fp) ~empty:(if !fn = 0 then 1.0 else 0.0) in
  let recall = ratio !tp (!tp + !fn) ~empty:1.0 in
  let f1 =
    if precision +. recall = 0.0 then 0.0
    else 2.0 *. precision *. recall /. (precision +. recall)
  in
  {
    accuracy = fl (!tp + !tn) /. fl n;
    precision;
    recall;
    f1;
    false_positive_rate = ratio !fp (!fp + !tn) ~empty:0.0;
    false_negative_rate = ratio !fn (!fn + !tp) ~empty:0.0;
    n;
  }

let pp fmt t =
  Format.fprintf fmt "acc=%.3f prec=%.3f recall=%.3f f1=%.3f fpr=%.3f fnr=%.3f (n=%d)"
    t.accuracy t.precision t.recall t.f1 t.false_positive_rate t.false_negative_rate t.n
