open Prom_ml

type candidate = {
  config : Config.t;
  f1 : float;
  precision : float;
  recall : float;
  coverage_deviation : float;
}

let grid_search_classification ?(epsilons = [ 0.05; 0.1; 0.2; 0.3 ])
    ?(gaussian_cs = [ 1.0; 3.0; 5.0 ]) ?(seed = 47) ~base ~committee ~model ~feature_of
    data =
  if Dataset.length data < 10 then
    invalid_arg "Tuning.grid_search_classification: calibration dataset too small";
  let rng = Prom_linalg.Rng.create seed in
  let shuffled = Dataset.shuffle rng data in
  let internal_cal, validation = Dataset.split_at shuffled ~ratio:0.8 in
  let mispredicted =
    Array.mapi (fun i x -> Model.predict model x <> validation.y.(i)) validation.x
  in
  let evaluate config =
    let det =
      Detector.Classification.create ~config ~committee ~model ~feature_of internal_cal
    in
    let flagged = Array.map (fun x -> snd (Detector.Classification.predict det x)) validation.x in
    let m = Detection_metrics.compute ~flagged ~mispredicted in
    let assessment =
      Assessment.classification ~r:2 ~seed ~config ~committee ~model ~feature_of data
    in
    {
      config;
      f1 = m.Detection_metrics.f1;
      precision = m.Detection_metrics.precision;
      recall = m.Detection_metrics.recall;
      coverage_deviation = assessment.Assessment.deviation;
    }
  in
  let candidates =
    List.concat_map
      (fun epsilon ->
        List.map
          (fun gaussian_c -> evaluate { base with Config.epsilon; gaussian_c })
          gaussian_cs)
      epsilons
  in
  List.sort
    (fun a b ->
      match compare b.f1 a.f1 with
      | 0 -> compare a.coverage_deviation b.coverage_deviation
      | c -> c)
    candidates

let best = function
  | [] -> invalid_arg "Tuning.best: empty candidate list"
  | c :: _ -> c

let grid_search_regression ?(epsilons = [ 0.05; 0.1; 0.2 ])
    ?(cluster_counts = [ 2; 4; 8 ]) ?(deviation = 0.2) ?(seed = 47) ~base ~committee
    ~model ~feature_of data =
  if Dataset.length data < 10 then
    invalid_arg "Tuning.grid_search_regression: calibration dataset too small";
  let rng = Prom_linalg.Rng.create seed in
  let shuffled = Dataset.shuffle rng data in
  let internal_cal, validation = Dataset.split_at shuffled ~ratio:0.8 in
  let mispredicted =
    Array.mapi
      (fun i x ->
        let truth = validation.y.(i) in
        let scale = Stdlib.max (abs_float truth) 1e-9 in
        abs_float (model.Model.predict x -. truth) /. scale > deviation)
      validation.x
  in
  let evaluate config n_clusters =
    let det =
      Detector.Regression.create ~config ~committee ~n_clusters ~model ~feature_of ~seed
        internal_cal
    in
    let flagged =
      Array.map (fun x -> snd (Detector.Regression.predict det x)) validation.x
    in
    let m = Detection_metrics.compute ~flagged ~mispredicted in
    let assessment =
      Assessment.regression ~r:2 ~seed ~n_clusters ~config ~committee ~model ~feature_of
        data
    in
    {
      config;
      f1 = m.Detection_metrics.f1;
      precision = m.Detection_metrics.precision;
      recall = m.Detection_metrics.recall;
      coverage_deviation = assessment.Assessment.deviation;
    }
  in
  let candidates =
    List.concat_map
      (fun epsilon ->
        List.map
          (fun k -> evaluate { base with Config.epsilon } k)
          (List.filter (fun k -> k <= Dataset.length internal_cal / 2) cluster_counts))
      epsilons
  in
  List.sort
    (fun a b ->
      match compare b.f1 a.f1 with
      | 0 -> compare a.coverage_deviation b.coverage_deviation
      | c -> c)
    candidates
