(** Comparators for Figure 10: simplified reimplementations of the
    design decisions PROM improves upon.

    - {b Naive CP} (MAPIE / PUNCC style): a single LAC nonconformity
      function over the {i full, unweighted} calibration set; rejects
      when the p-value of the predicted label falls below [epsilon].
    - {b TESSERACT style}: classical conformal credibility {i and}
      confidence (1 minus the second-largest p-value), again on the full
      calibration set with a single function.
    - {b RISE style}: trains a secondary classifier (logistic
      regression) on conformal scores of an internal validation split to
      predict mispredictions directly.

    All three expose the same [flags : Vec.t -> bool] interface so the
    benchmark harness can swap them for PROM. *)

open Prom_linalg
open Prom_ml

type t = { name : string; flags : Vec.t -> bool }

val naive_cp :
  ?epsilon:float ->
  model:Model.classifier ->
  feature_of:(Vec.t -> Vec.t) ->
  int Dataset.t ->
  t

val tesseract :
  ?epsilon:float ->
  model:Model.classifier ->
  feature_of:(Vec.t -> Vec.t) ->
  int Dataset.t ->
  t

(** [rise ~seed ...] splits the calibration data internally: conformal
    scores are computed against one part, and the rejector is trained on
    the other part's (scores, mispredicted) pairs. *)
val rise :
  ?epsilon:float ->
  seed:int ->
  model:Model.classifier ->
  feature_of:(Vec.t -> Vec.t) ->
  int Dataset.t ->
  t
