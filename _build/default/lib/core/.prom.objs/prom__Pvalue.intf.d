lib/core/pvalue.mli: Calibration Nonconformity Prom_linalg Vec
