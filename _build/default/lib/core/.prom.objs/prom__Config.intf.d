lib/core/config.mli:
