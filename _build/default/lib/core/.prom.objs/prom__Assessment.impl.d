lib/core/assessment.ml: Array Config Dataset Detector List Prom_linalg Prom_ml
