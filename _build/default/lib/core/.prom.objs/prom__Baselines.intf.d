lib/core/baselines.mli: Dataset Model Prom_linalg Prom_ml Vec
