lib/core/service.mli: Config Nonconformity Prom_linalg Vec
