lib/core/scores.mli: Config
