lib/core/pvalue.ml: Array Calibration Nonconformity
