lib/core/detection_metrics.ml: Array Format
