lib/core/detector.mli: Config Dataset Model Nonconformity Prom_linalg Prom_ml Scores Vec
