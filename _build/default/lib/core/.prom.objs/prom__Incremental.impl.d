lib/core/incremental.ml: Array Dataset Detector List Model Prom_ml Scores Stdlib
