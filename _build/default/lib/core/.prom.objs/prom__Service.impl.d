lib/core/service.ml: Array Dataset Detector Fun Hashtbl List Model Prom_linalg Prom_ml Scores Stdlib Vec
