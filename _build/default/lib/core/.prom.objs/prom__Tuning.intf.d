lib/core/tuning.mli: Config Dataset Model Nonconformity Prom_linalg Prom_ml Vec
