lib/core/detector.ml: Array Calibration Config Float List Model Nonconformity Prom_linalg Prom_ml Pvalue Scores Stats Stdlib Vec
