lib/core/calibration.ml: Array Config Dataset Distance Gap_statistic Kmeans Model Prom_linalg Prom_ml Rng Stats Stdlib Vec
