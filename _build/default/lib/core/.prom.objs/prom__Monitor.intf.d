lib/core/monitor.mli:
