lib/core/incremental.mli: Dataset Detector Model Prom_linalg Prom_ml Vec
