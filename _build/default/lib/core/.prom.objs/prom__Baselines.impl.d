lib/core/baselines.ml: Array Calibration Config Dataset Logistic Model Nonconformity Prom_linalg Prom_ml Pvalue Rng Stdlib Vec
