lib/core/nonconformity.mli: Prom_linalg Vec
