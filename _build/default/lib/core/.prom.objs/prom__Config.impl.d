lib/core/config.ml:
