lib/core/framework.mli: Assessment Config Dataset Detector Incremental Model Nonconformity Prom_linalg Prom_ml Vec
