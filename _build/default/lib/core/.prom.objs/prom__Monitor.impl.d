lib/core/monitor.ml: Array
