lib/core/scores.ml: Array Config List Option
