lib/core/calibration.mli: Config Dataset Kmeans Model Prom_linalg Prom_ml Vec
