lib/core/tuning.ml: Array Assessment Config Dataset Detection_metrics Detector List Model Prom_linalg Prom_ml Stdlib
