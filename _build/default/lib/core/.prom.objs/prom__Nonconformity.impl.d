lib/core/nonconformity.ml: Array Prom_linalg Stdlib Vec
