lib/core/detection_metrics.mli: Format
