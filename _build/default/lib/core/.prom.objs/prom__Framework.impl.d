lib/core/framework.ml: Array Assessment Dataset Detector Fun Incremental List Model Nonconformity Prom_linalg Prom_ml Rng Stdlib Vec
