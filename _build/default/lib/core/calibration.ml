open Prom_linalg
open Prom_ml

type cls_entry = { features : Vec.t; label : int; proba : Vec.t }

type cls = {
  entries : cls_entry array;
  config : Config.t;
  scaler : Dataset.Scaler.t;
  tau : float;
  loo_distances : float array;
      (* sorted leave-one-out kNN-distance scores of the calibration set *)
}

(* Standardize the similarity space with calibration statistics so the
   temperature of Eq. 1 means the same thing across tasks. *)
let fit_scaler feats =
  Dataset.Scaler.fit (Dataset.create feats (Array.map (fun _ -> 0) feats))

(* Self-calibrated temperature: the paper's [temperature] knob is
   interpreted relative to the calibration set's own distance scale, so
   that w = exp (-d^2 / tau) maps "typical in-distribution distance" to
   a weight near 1 regardless of the feature space. [tau_eff =
   temperature / 100 * median pairwise squared distance]; the default
   500 therefore places the e-fold decay at 5x the median. *)
(* Conformal kNN distance scores (Ishimtsev et al., the paper's [36]):
   the nonconformity of a point is its mean distance to its k nearest
   calibration neighbours; calibrated leave-one-out on the calibration
   set itself, this gives an exactly valid out-of-distribution test. *)
let knn_distance_k = 5

let knn_distance_score ?(exclude = -1) feats v =
  let ds = ref [] in
  Array.iteri
    (fun i f -> if i <> exclude then ds := Distance.euclidean f v :: !ds)
    feats;
  let ds = Array.of_list !ds in
  Array.sort compare ds;
  let k = Stdlib.min knn_distance_k (Array.length ds) in
  if k = 0 then 0.0
  else begin
    let acc = ref 0.0 in
    for i = 0 to k - 1 do
      acc := !acc +. ds.(i)
    done;
    !acc /. float_of_int k
  end

let loo_distance_scores feats =
  let scores = Array.mapi (fun i _ -> knn_distance_score ~exclude:i feats feats.(i)) feats in
  Array.sort compare scores;
  scores

let distance_pvalue_of loo score =
  let n = Array.length loo in
  if n = 0 then 1.0
  else begin
    (* count of LOO scores >= test score, by binary search on the
       sorted array *)
    let rec first_geq lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if loo.(mid) >= score then first_geq lo mid else first_geq (mid + 1) hi
    in
    let at_least = n - first_geq 0 n in
    let p = float_of_int (at_least + 1) /. float_of_int (n + 1) in
    (* Beyond the calibration tail every score would share the floor
       1/(n+1); extend with an exponential tail so farther points get
       strictly smaller p-values and the significance level keeps
       controlling how far out the rejection boundary sits. *)
    let max_loo = loo.(n - 1) in
    if at_least = 0 && max_loo > 0.0 && score > max_loo then
      p *. exp (-4.0 *. ((score /. max_loo) -. 1.0))
    else p
  end

let effective_tau config feats =
  let n = Array.length feats in
  let d2s =
    if n < 2 then [| 1.0 |]
    else begin
      let acc = ref [] in
      let step = Stdlib.max 1 (n * n / 4000) in
      let k = ref 0 in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          incr k;
          if !k mod step = 0 then acc := Distance.sq_euclidean feats.(i) feats.(j) :: !acc
        done
      done;
      match !acc with [] -> [| 1.0 |] | l -> Array.of_list l
    end
  in
  let med = Stats.median d2s in
  let med = if med <= 0.0 then 1.0 else med in
  config.Config.temperature /. 100.0 *. med

let prepare_classification ~config ~model ~feature_of (d : int Dataset.t) =
  Config.validate config;
  if Dataset.length d = 0 then invalid_arg "Calibration: empty calibration dataset";
  let feats = Array.map feature_of d.x in
  let scaler = fit_scaler feats in
  let std_feats = Array.map (Dataset.Scaler.transform scaler) feats in
  let entries =
    Array.mapi
      (fun i x ->
        { features = std_feats.(i); label = d.y.(i); proba = model.Model.predict_proba x })
      d.x
  in
  {
    entries;
    config;
    scaler;
    tau = effective_tau config std_feats;
    loo_distances = loo_distance_scores std_feats;
  }

let standardize_cls t v = Dataset.Scaler.transform t.scaler v

type reg_entry = {
  rfeatures : Vec.t;
  target : float;
  rpred : float;
  cluster : int;
  rproxy : float;
  rspread : float;
}

type reg = {
  rentries : reg_entry array;
  rconfig : Config.t;
  clusters : Kmeans.t;
  n_clusters : int;
  rscaler : Dataset.Scaler.t;
  rtau : float;
  rloo_distances : float array;
}

let prepare_regression ?n_clusters ~config ~model ~feature_of ~seed (d : float Dataset.t) =
  Config.validate config;
  let n = Dataset.length d in
  if n = 0 then invalid_arg "Calibration: empty calibration dataset";
  let scaler = fit_scaler (Array.map feature_of d.x) in
  let feats = Array.map (fun x -> Dataset.Scaler.transform scaler (feature_of x)) d.x in
  let rng = Rng.create seed in
  let k =
    match n_clusters with
    | Some k ->
        if k < 1 || k > n then invalid_arg "Calibration: n_clusters out of range";
        k
    | None ->
        if n < 4 then 1
        else
          let k_max = Stdlib.min 20 (n / 2) in
          (Gap_statistic.select rng feats ~k_min:2 ~k_max).best_k
  in
  let clusters = Kmeans.fit (Rng.split rng) feats ~k in
  (* Leave-one-out k-NN proxy targets and neighbourhood spreads,
     mirroring the test-time ground-truth approximation so both sides of
     Eq. 2 use the same estimator. *)
  let loo_proxy i =
    let k = config.Config.knn_k in
    let ranked =
      Distance.rank_by_distance ~dist:Distance.euclidean feats feats.(i)
    in
    let neigh = ref [] and taken = ref 0 in
    Array.iter
      (fun (j, _) ->
        if j <> i && !taken < k then begin
          neigh := d.y.(j) :: !neigh;
          incr taken
        end)
      ranked;
    match !neigh with
    | [] -> (d.y.(i), 0.0)
    | ys ->
        let arr = Array.of_list ys in
        (Stats.mean arr, if Array.length arr > 1 then Stats.std arr else 0.0)
  in
  let rentries =
    Array.mapi
      (fun i x ->
        let rproxy, rspread = loo_proxy i in
        {
          rfeatures = feats.(i);
          target = d.y.(i);
          rpred = model.Model.predict x;
          cluster = clusters.assignments.(i);
          rproxy;
          rspread;
        })
      d.x
  in
  {
    rentries;
    rconfig = config;
    clusters;
    n_clusters = k;
    rscaler = scaler;
    rtau = effective_tau config feats;
    rloo_distances = loo_distance_scores feats;
  }

let standardize_reg t v = Dataset.Scaler.transform t.rscaler v

type 'e selected = { entry : 'e; weight : float; distance : float }

let select_subset ?tau ~config entries ~feature_of_entry test_features =
  let tau = match tau with Some t -> t | None -> config.Config.temperature in
  let n = Array.length entries in
  if n = 0 then [||]
  else begin
    let ranked =
      Array.mapi
        (fun i e -> (i, Distance.euclidean (feature_of_entry e) test_features))
        entries
    in
    Array.sort (fun (_, d1) (_, d2) -> compare d1 d2) ranked;
    let keep =
      if n < config.Config.select_all_below then n
      else Stdlib.max 1 (int_of_float (config.Config.select_ratio *. float_of_int n))
    in
    Array.init keep (fun r ->
        let i, dist = ranked.(r) in
        let weight = exp (-.(dist *. dist) /. tau) in
        { entry = entries.(i); weight; distance = dist })
  end

let assign_cluster reg v =
  (* Label by the nearest calibration sample's cluster, falling back to
     the nearest centroid when entries are somehow empty. *)
  match Array.length reg.rentries with
  | 0 -> Kmeans.assign reg.clusters v
  | _ ->
      let best = ref 0 and best_d = ref infinity in
      Array.iteri
        (fun i e ->
          let d = Distance.sq_euclidean e.rfeatures v in
          if d < !best_d then begin
            best := i;
            best_d := d
          end)
        reg.rentries;
      reg.rentries.(!best).cluster

let knn_truth reg v ~k =
  let feats = Array.map (fun e -> e.rfeatures) reg.rentries in
  let idx = Distance.nearest ~dist:Distance.euclidean feats v k in
  let targets = Array.map (fun i -> reg.rentries.(i).target) idx in
  let mean = Stats.mean targets in
  let spread = if Array.length targets > 1 then Stats.std targets else 0.0 in
  (mean, spread)

let distance_pvalue_cls t v =
  distance_pvalue_of t.loo_distances
    (knn_distance_score (Array.map (fun e -> e.features) t.entries) v)

let distance_pvalue_reg t v =
  distance_pvalue_of t.rloo_distances
    (knn_distance_score (Array.map (fun e -> e.rfeatures) t.rentries) v)
