(** Design-time hyperparameter selection (paper Sec. 5.2): a grid search
    over detector settings, scored by drift-detection F1 on an internal
    validation split of the calibration data, where "misprediction"
    ground truth is the model being wrong on a held-out sample. *)

open Prom_linalg
open Prom_ml

type candidate = {
  config : Config.t;
  f1 : float;
  precision : float;
  recall : float;
  coverage_deviation : float;
}

(** [grid_search_classification ?epsilons ?gaussian_cs ?seed ~base
    ~committee ~model ~feature_of calibration] evaluates every
    combination and returns candidates sorted by decreasing F1 (ties
    broken by smaller coverage deviation). Defaults sweep
    [epsilons = [0.05; 0.1; 0.2; 0.3]] and
    [gaussian_cs = [1.; 3.; 5.]]. *)
val grid_search_classification :
  ?epsilons:float list ->
  ?gaussian_cs:float list ->
  ?seed:int ->
  base:Config.t ->
  committee:Nonconformity.cls list ->
  model:Model.classifier ->
  feature_of:(Vec.t -> Vec.t) ->
  int Dataset.t ->
  candidate list

(** [best cands] is the head of the sorted list. Raises
    [Invalid_argument] on an empty list. *)
val best : candidate list -> candidate

(** [grid_search_regression ?epsilons ?cluster_counts ?seed ~base
    ~committee ~model ~feature_of calibration] is the regression
    analogue: candidates are scored by drift-detection F1 on an internal
    validation split, where a misprediction is a residual deviating more
    than [deviation] (relative, default 0.2 as in Sec. 6.6) from the
    true target. *)
val grid_search_regression :
  ?epsilons:float list ->
  ?cluster_counts:int list ->
  ?deviation:float ->
  ?seed:int ->
  base:Config.t ->
  committee:Nonconformity.reg list ->
  model:Model.regressor ->
  feature_of:(Vec.t -> Vec.t) ->
  float Dataset.t ->
  candidate list
