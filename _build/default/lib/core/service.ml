open Prom_linalg
open Prom_ml

type t = {
  detector : Detector.Classification.t;
  (* Holds the probability vector of the in-flight query. The wrapped
     "model" reads it when the detector asks for the query's
     probabilities; calibration inputs are served from [known]. *)
  query : (Vec.t * Vec.t) option ref;
  known : (Vec.t, Vec.t) Hashtbl.t;
}

let create ?config ?committee triples =
  if triples = [] then invalid_arg "Service.create: empty calibration";
  let dim = match triples with (f, _, _) :: _ -> Array.length f | [] -> 0 in
  let n_classes =
    List.fold_left (fun acc (_, _, p) -> Stdlib.max acc (Array.length p)) 0 triples
  in
  List.iter
    (fun (f, label, p) ->
      if Array.length f <> dim then invalid_arg "Service.create: ragged features";
      if Array.length p <> n_classes then
        invalid_arg "Service.create: ragged probability vectors";
      if label < 0 || label >= n_classes then
        invalid_arg "Service.create: label out of range")
    triples;
  let known = Hashtbl.create (List.length triples) in
  List.iter (fun (f, _, p) -> Hashtbl.replace known f p) triples;
  let query = ref None in
  let predict_proba x =
    match !query with
    | Some (qx, qp) when qx == x -> qp
    | _ -> (
        match Hashtbl.find_opt known x with
        | Some p -> p
        | None -> invalid_arg "Service: unknown input")
  in
  let model =
    { Model.n_classes; predict_proba; name = "external"; state = Model.No_state }
  in
  let calibration =
    Dataset.create
      (Array.of_list (List.map (fun (f, _, _) -> f) triples))
      (Array.of_list (List.map (fun (_, y, _) -> y) triples))
  in
  let detector =
    Detector.Classification.create ?config ?committee ~model ~feature_of:Fun.id
      calibration
  in
  { detector; query; known }

let evaluate t ~features ~proba =
  t.query := Some (features, proba);
  Fun.protect
    ~finally:(fun () -> t.query := None)
    (fun () -> Detector.Classification.evaluate t.detector features)

let should_accept t ~features ~proba =
  not (evaluate t ~features ~proba).Detector.drifted

let scores t ~features ~proba =
  let v = evaluate t ~features ~proba in
  let dist =
    match v.Detector.experts with e :: _ -> e.Scores.distance_pvalue | [] -> 1.0
  in
  (v.Detector.mean_credibility, v.Detector.mean_confidence, dist)
