open Prom_ml

type report = {
  coverage : float;
  deviation : float;
  per_round : float list;
  alert : bool;
}

let alert_threshold = 0.1

let finish ~epsilon per_round =
  let coverage = Prom_linalg.Stats.mean (Array.of_list per_round) in
  let deviation = abs_float (coverage -. (1.0 -. epsilon)) in
  { coverage; deviation; per_round; alert = deviation > alert_threshold }

(* Shared round structure: split 80/20 [r] times, build a detector on
   the 80% part and measure how often the ground-truth label lands in
   the experts' prediction regions on the 20% part. *)
let run_rounds ~r ~seed data ~round =
  if r < 1 then invalid_arg "Assessment: r must be >= 1";
  if Dataset.length data < 5 then
    invalid_arg "Assessment: calibration dataset too small to split";
  let rng = Prom_linalg.Rng.create seed in
  List.init r (fun _ ->
      let shuffled = Dataset.shuffle rng data in
      let internal_cal, validation = Dataset.split_at shuffled ~ratio:0.8 in
      round internal_cal validation)

let coverage_of_sets sets truth =
  let covered =
    List.filter (fun (_, set) -> List.mem truth set) sets |> List.length
  in
  float_of_int covered /. float_of_int (List.length sets)

let classification ?(r = 3) ?(seed = 43) ~config ~committee ~model ~feature_of data =
  let per_round =
    run_rounds ~r ~seed data ~round:(fun internal_cal validation ->
        let det =
          Detector.Classification.create ~config ~committee ~model ~feature_of
            internal_cal
        in
        let acc = ref 0.0 in
        Array.iteri
          (fun i x ->
            let sets = Detector.Classification.prediction_sets det x in
            acc := !acc +. coverage_of_sets sets validation.y.(i))
          validation.x;
        !acc /. float_of_int (Dataset.length validation))
  in
  finish ~epsilon:config.Config.epsilon per_round

let regression ?(r = 3) ?(seed = 43) ?n_clusters ~config ~committee ~model ~feature_of
    data =
  let per_round =
    run_rounds ~r ~seed data ~round:(fun internal_cal validation ->
        let det =
          Detector.Regression.create ~config ~committee ?n_clusters ~model ~feature_of
            ~seed internal_cal
        in
        let acc = ref 0.0 in
        Array.iteri
          (fun i x ->
            (* For regression the "true label" is the cluster that the
               sample's true neighbourhood occupies; we use the cluster
               assigned from features, checking the region contains it. *)
            ignore validation.y.(i);
            let v = Detector.Regression.evaluate det x in
            let sets = Detector.Regression.cluster_sets det x in
            acc := !acc +. coverage_of_sets sets v.Detector.cluster)
          validation.x;
        !acc /. float_of_int (Dataset.length validation))
  in
  finish ~epsilon:config.Config.epsilon per_round
