(* Eq. 2 with the adaptive weights applied as sample weights (the
   weighted conformal form): close calibration samples dominate the
   count, so the p-value reflects the local neighbourhood of the test
   input. The +1 terms are the standard split-CP smoothing - the test
   sample counts as its own most extreme calibration point - keeping
   p-values in (0, 1] and uniform under exchangeability. *)
let smoothing smooth at_least_w total_w =
  (* The +1 smoothing (the test sample counts as its own most extreme
     calibration point) keeps the credibility test valid on thin
     calibration sets; prediction-set construction uses the raw ratio so
     labels without any supporting evidence are excluded. *)
  if smooth then (at_least_w +. 1.0) /. (total_w +. 1.0)
  else if total_w <= 0.0 then 0.0
  else at_least_w /. total_w

let classification ?(smooth = true) ~fn ~selected ~proba ~label () =
  let test_score = fn.Nonconformity.cls_score ~proba ~label in
  let total_w = ref 0.0 and at_least_w = ref 0.0 and matching = ref 0 in
  Array.iter
    (fun { Calibration.entry; weight; _ } ->
      if entry.Calibration.label = label then begin
        incr matching;
        total_w := !total_w +. weight;
        let a = fn.Nonconformity.cls_score ~proba:entry.Calibration.proba ~label in
        if a >= test_score then at_least_w := !at_least_w +. weight
      end)
    selected;
  if !matching = 0 then 0.0 else smoothing smooth !at_least_w !total_w

let classification_all ?smooth ~fn ~selected ~proba ~n_classes () =
  Array.init n_classes (fun label -> classification ?smooth ~fn ~selected ~proba ~label ())

let regression ?(smooth = true) ~fn ~selected ~spread_of_entry ~cluster ~test_score () =
  let total_w = ref 0.0 and at_least_w = ref 0.0 and matching = ref 0 in
  Array.iter
    (fun { Calibration.entry; weight; _ } ->
      if entry.Calibration.cluster = cluster then begin
        incr matching;
        total_w := !total_w +. weight;
        let a =
          fn.Nonconformity.reg_score ~pred:entry.Calibration.rpred
            ~truth:entry.Calibration.rproxy ~spread:(spread_of_entry entry)
        in
        if a >= test_score then at_least_w := !at_least_w +. weight
      end)
    selected;
  if !matching = 0 then 0.0 else smoothing smooth !at_least_w !total_w

let regression_all ?smooth ~fn ~selected ~spread_of_entry ~n_clusters ~test_score () =
  Array.init n_clusters (fun cluster ->
      regression ?smooth ~fn ~selected ~spread_of_entry ~cluster ~test_score ())
