(** Metrics for drift-detection quality (paper Sec. 6.6). The positive
    class is "mispredicted / drifting"; a detector's flag is a positive
    prediction. *)

type t = {
  accuracy : float;
  precision : float;  (** flagged-and-mispredicted / flagged *)
  recall : float;  (** flagged-and-mispredicted / mispredicted *)
  f1 : float;
  false_positive_rate : float;
      (** correct predictions that were wrongly rejected *)
  false_negative_rate : float;  (** mispredictions that slipped through *)
  n : int;
}

(** [compute ~flagged ~mispredicted] — arrays must have equal length.
    Degenerate denominators yield 0 (or 1 for precision/recall when
    there is nothing to find and nothing was flagged). *)
val compute : flagged:bool array -> mispredicted:bool array -> t

val pp : Format.formatter -> t -> unit
