let prediction_set ~epsilon pvalues =
  let set = ref [] in
  for i = Array.length pvalues - 1 downto 0 do
    if pvalues.(i) > epsilon then set := i :: !set
  done;
  !set

let confidence ~c ~set_size =
  let x = float_of_int set_size in
  exp (-.((x -. 1.0) ** 2.0) /. (2.0 *. c *. c))

type expert_verdict = {
  expert : string;
  credibility : float;
  confidence : float;
  set_size : int;
  distance_pvalue : float;
  flags_drift : bool;
}

let expert_verdict ?(distance_pvalue = 1.0) ?set_pvalues ?(use_confidence = true)
    ?(discrete = false) ~config ~expert ~pvalues ~predicted () =
  if predicted < 0 || predicted >= Array.length pvalues then
    invalid_arg "Scores.expert_verdict: predicted label out of range";
  let epsilon = config.Config.epsilon in
  let credibility = pvalues.(predicted) in
  let set_source = Option.value ~default:pvalues set_pvalues in
  let set_size = List.length (prediction_set ~epsilon set_source) in
  let confidence = confidence ~c:config.Config.gaussian_c ~set_size in
  let significance = 1.0 -. epsilon in
  (* The conformal distance test fires when the input sits outside the
     calibration distribution - the covariate-shift component of the
     adaptive scheme. It participates in every rule except the
     classical credibility-only test. *)
  let out_of_distribution = distance_pvalue < epsilon in
  (* The set-size channel fires on genuinely anomalous regions: an empty
     set (no class explains the sample), three or more candidates, or a
     2-element set - except for discrete-scored experts (TopK's integer
     ranks), whose 2-element multiclass sets are too coarse to treat as
     uncertainty evidence. *)
  let n_classes = Array.length pvalues in
  let anomalous_size =
    set_size = 0 || set_size >= 3
    || (set_size = 2 && (n_classes = 2 || not discrete))
  in
  let low_confidence = use_confidence && anomalous_size && confidence < significance in
  let flags_drift =
    match config.Config.decision_rule with
    | Config.Conjunction ->
        (credibility < significance && (low_confidence || not use_confidence))
        || out_of_distribution
    | Config.Disjunction -> credibility < epsilon || low_confidence || out_of_distribution
    | Config.Credibility_only -> credibility < epsilon
  in
  { expert; credibility; confidence; set_size; distance_pvalue; flags_drift }

let committee_decision ~config verdicts =
  match verdicts with
  | [] -> invalid_arg "Scores.committee_decision: empty committee"
  | _ ->
      let flags = List.length (List.filter (fun v -> v.flags_drift) verdicts) in
      float_of_int flags >= config.Config.vote_fraction *. float_of_int (List.length verdicts)
