(** Credibility and confidence scores (paper Sec. 5.3), and the
    prediction sets they are built from. *)

(** [prediction_set ~epsilon pvalues] is the set of labels whose
    p-value exceeds [epsilon] — the labels plausibly associated with
    the test sample. *)
val prediction_set : epsilon:float -> float array -> int list

(** [confidence ~c ~set_size] is the Gaussian significance of the
    prediction-set size: [exp (-(x - 1)^2 / (2 c^2))]. A singleton set
    scores 1; empty or large sets score lower. *)
val confidence : c:float -> set_size:int -> float

(** Per-expert assessment of one test sample. *)
type expert_verdict = {
  expert : string;  (** nonconformity function name *)
  credibility : float;  (** p-value of the predicted label *)
  confidence : float;
  set_size : int;
  distance_pvalue : float;
      (** conformal kNN-distance p-value (shared across experts);
          1.0 when the distance test is not applicable *)
  flags_drift : bool;
}

(** [expert_verdict ?distance_pvalue ?set_pvalues ~config ~expert
    ~pvalues ~predicted ()] assembles an expert's verdict: credibility
    is the predicted label's (smoothed) p-value, confidence comes from
    the prediction-set size built from [set_pvalues] (unsmoothed;
    defaults to [pvalues]), and the drift flag is determined by
    [config.decision_rule] (see {!Config.decision_rule}), with the
    conformal distance test contributing to all rules except
    [Credibility_only]. [use_confidence] (default true) lets regression
    detectors exclude the set-size signal from the drift flag: residual
    scores do not vary with the candidate cluster, so homogeneous
    clusters make the set size uninformative there; the confidence score
    is still reported. *)
val expert_verdict :
  ?distance_pvalue:float ->
  ?set_pvalues:float array ->
  ?use_confidence:bool ->
  ?discrete:bool ->
  config:Config.t ->
  expert:string ->
  pvalues:float array ->
  predicted:int ->
  unit ->
  expert_verdict

(** [committee_decision ~config verdicts] applies majority voting
    (Sec. 5, Fig. 5): the sample is drifting when at least
    [vote_fraction] of the experts flag it. Raises [Invalid_argument]
    on an empty committee. *)
val committee_decision : config:Config.t -> expert_verdict list -> bool
