(** Initialization assessment (paper Sec. 5.2, Eq. 3): cross-validated
    conformal coverage on the held-out calibration dataset. The
    calibration data is split [r] times into internal calibration (80%)
    and validation (20%); the coverage rate — how often the true label
    lands in the prediction region — should match the significance
    level [1 - epsilon]. A deviation above [alert_threshold] signals a
    poorly initialized framework. *)

open Prom_linalg
open Prom_ml

type report = {
  coverage : float;  (** average over rounds and experts *)
  deviation : float;  (** [|coverage - (1 - epsilon)|] *)
  per_round : float list;
  alert : bool;  (** [deviation > alert_threshold] *)
}

val alert_threshold : float
(** 0.1, per the paper *)

(** [classification ?r ?seed ~config ~committee ~model ~feature_of
    calibration] runs the assessment; [r] defaults to 3. Raises
    [Invalid_argument] when the calibration set is too small to
    split. *)
val classification :
  ?r:int ->
  ?seed:int ->
  config:Config.t ->
  committee:Nonconformity.cls list ->
  model:Model.classifier ->
  feature_of:(Vec.t -> Vec.t) ->
  int Dataset.t ->
  report

(** [regression] analogously covers cluster labels. *)
val regression :
  ?r:int ->
  ?seed:int ->
  ?n_clusters:int ->
  config:Config.t ->
  committee:Nonconformity.reg list ->
  model:Model.regressor ->
  feature_of:(Vec.t -> Vec.t) ->
  float Dataset.t ->
  report
