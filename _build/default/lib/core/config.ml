type decision_rule = Conjunction | Disjunction | Credibility_only

type t = {
  epsilon : float;
  temperature : float;
  select_ratio : float;
  select_all_below : int;
  gaussian_c : float;
  knn_k : int;
  vote_fraction : float;
  decision_rule : decision_rule;
}

let default =
  {
    epsilon = 0.1;
    temperature = 500.0;
    select_ratio = 0.5;
    select_all_below = 200;
    gaussian_c = 1.0;
    knn_k = 3;
    vote_fraction = 0.25;
    decision_rule = Disjunction;
  }

let validate t =
  let check name ok = if not ok then invalid_arg ("Config: invalid " ^ name) in
  check "epsilon" (t.epsilon > 0.0 && t.epsilon < 1.0);
  check "temperature" (t.temperature > 0.0);
  check "select_ratio" (t.select_ratio > 0.0 && t.select_ratio <= 1.0);
  check "select_all_below" (t.select_all_below >= 0);
  check "gaussian_c" (t.gaussian_c > 0.0);
  check "knn_k" (t.knn_k >= 1);
  check "vote_fraction" (t.vote_fraction > 0.0 && t.vote_fraction <= 1.0)
