(** A TVM-like tensor-program schedule space and synthetic cost surface
    — the substrate of case study C5 (DNN code generation). A workload
    is a GEMM-shaped layer from a BERT-family network; a schedule fixes
    tiling, unrolling, vectorization and parallelization knobs. The
    "true" throughput comes from an analytic model with the usual
    interactions (cache-fitting tiles, vector-width alignment, spill
    cliffs), so the oracle schedule is well-defined and a learned cost
    model can be trained, drift-tested across network variants, and used
    to drive a search ({!Tvm_search} in [prom_tasks]). *)

open Prom_linalg

(** BERT-family variants of the TenSet setup. *)
type network = Bert_tiny | Bert_base | Bert_medium | Bert_large

val networks : network list
val network_name : network -> string

(** One GEMM-shaped layer workload: [m x k] times [k x n]. *)
type workload = { net : network; m : int; n : int; k : int }

(** [sample_workload rng net] draws a layer whose dimensions follow the
    variant's hidden sizes (tiny 128 .. large 1024, with heads and FFN
    expansions). *)
val sample_workload : Rng.t -> network -> workload

type schedule = {
  tile_m : int;
  tile_n : int;
  tile_k : int;
  unroll : int;  (** innermost unroll factor *)
  vectorize : int;  (** vector width in elements *)
  parallel : int;  (** outer-loop parallel chunks *)
}

(** [random_schedule rng] draws from the discrete knob space. *)
val random_schedule : Rng.t -> schedule

(** [mutate rng s] perturbs one knob — the evolutionary-search move. *)
val mutate : Rng.t -> schedule -> schedule

(** [throughput workload s] is the modeled GFLOP/s of [s] on the
    workload (higher is better). *)
val throughput : workload -> schedule -> float

(** [feature_vector workload s] is the cost-model input: workload shape
    plus schedule knobs plus derived interaction terms. *)
val feature_vector : workload -> schedule -> Vec.t

(** [oracle ?samples rng workload] is the best achievable throughput,
    found by exhaustive enumeration of the knob space — standing in for
    the paper's exhaustive profiling. ([samples] and [rng] are kept for
    interface stability and ignored.) *)
val oracle : ?samples:int -> Rng.t -> workload -> float

(** [element_bytes net] is the variant's element width (quantization) —
    the deployment property behind C5's drift. It is the last component
    of {!feature_vector}: observable, but constant in any one variant's
    training data. *)
val element_bytes : network -> int
