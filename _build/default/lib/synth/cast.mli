(** A small C-like abstract syntax tree, rich enough to express the
    vulnerability patterns of case study C4 and the synthetic kernels
    and loop nests of C1-C3. Programs are generated ({!Generator}),
    injected with bugs ({!Bug_inject}), pretty-printed ({!pp_program})
    and lexed back into token streams ({!Lexer}) the sequence models
    consume — the same code-as-data path the paper's models use. *)

type ctype = Void | Int | Long | Float | Char | Ptr of ctype

type binop = Add | Sub | Mul | Div | Mod | Lt | Le | Gt | Ge | Eq | Ne | And | Or

type unop = Neg | Not | Deref | Addr

type expr =
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | Var of string
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Call of string * expr list
  | Index of expr * expr

type stmt =
  | Expr_stmt of expr
  | Decl of ctype * string * expr option
  | Array_decl of ctype * string * int
  | Assign of expr * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of { init : stmt; cond : expr; step : stmt; body : stmt list }
  | Return of expr option

type func = {
  fname : string;
  ret : ctype;
  params : (ctype * string) list;
  body : stmt list;
}

type program = { includes : string list; functions : func list }

val pp_ctype : Format.formatter -> ctype -> unit
val pp_expr : Format.formatter -> expr -> unit
val pp_stmt : Format.formatter -> stmt -> unit
val pp_func : Format.formatter -> func -> unit
val pp_program : Format.formatter -> program -> unit

(** [to_string p] renders the program as C source text. *)
val to_string : program -> string

(** Structural statistics used for feature extraction. *)
type stats = {
  n_functions : int;
  n_statements : int;
  n_calls : int;
  n_loops : int;
  n_branches : int;
  n_decls : int;
  n_derefs : int;
  max_depth : int;
}

val stats_of : program -> stats

(** [calls_of p] lists every callee name, with repetition, in program
    order — the basis of call-pattern features like counting [free]
    calls. *)
val calls_of : program -> string list
