(** Synthetic vectorizable loops and an analytic SIMD performance model
    — the substrate of case study C2 (loop vectorization). A loop
    descriptor abstracts the LLVM test-suite loops the paper uses;
    benchmark families occupy distinct parameter regions so holding
    families out of training induces drift. The runtime model encodes
    the standard constraints: dependence distance caps the legal
    vectorization factor, non-unit strides kill bandwidth, short trip
    counts pay remainder-loop overhead, and too-aggressive unrolling
    spills registers. *)

open Prom_linalg

type loop = {
  family : string;  (** source benchmark family *)
  trip_count : int;
  stride : int;  (** element stride of the dominant access *)
  dep_distance : int;  (** minimum loop-carried dependence distance; 0 = none *)
  arith_ops : float;  (** arithmetic ops per iteration *)
  mem_ops : float;  (** memory ops per iteration *)
  has_reduction : bool;
  element_bytes : int;  (** 4 or 8 *)
  alignment : bool;
}

val families : string list
(** 18 benchmark families, as in the paper's loop corpus. *)

val sample_loop : Rng.t -> family:string -> loop

val feature_vector : loop -> Vec.t

(** The 35 (VF, IF) configurations of the paper: VF in
    [1;2;4;8;16;32;64], IF in [1;2;4;8;16]. *)
val configs : (int * int) array

(** [config_label (vf, if_)] is the class index in [0..34]. Raises
    [Invalid_argument] for unknown configurations. *)
val config_label : int * int -> int

val label_config : int -> int * int

(** [runtime loop (vf, if_)] is the modeled execution time of the loop
    compiled with vectorization factor [vf] and interleave factor
    [if_]. *)
val runtime : loop -> int * int -> float

(** [best_config loop] is the oracle [(config, runtime)]. *)
val best_config : loop -> (int * int) * float

(** [loop_to_ast rng loop] renders the descriptor as a C loop nest, so
    token-sequence models (DeepTune-style) can consume source text. *)
val loop_to_ast : Rng.t -> loop -> Cast.program
