open Prom_linalg
open Cast

type style = {
  era : int;
  n_helpers : int;
  stmts_per_func : int;
  loop_prob : float;
  branch_prob : float;
  use_threads : bool;
  long_idents : bool;
}

let style_of_era rng year =
  if year < 2010 || year > 2030 then invalid_arg "Generator.style_of_era: year out of range";
  (* Complexity ramps linearly with the year past 2013. *)
  let t = float_of_int (Stdlib.max 0 (year - 2013)) /. 10.0 in
  {
    era = year;
    n_helpers = 1 + Rng.int rng (2 + int_of_float (3.0 *. t));
    stmts_per_func = 3 + Rng.int rng (3 + int_of_float (6.0 *. t));
    loop_prob = 0.15 +. (0.35 *. t);
    branch_prob = 0.25 +. (0.2 *. t);
    use_threads = year >= 2019 && Rng.bernoulli rng (0.3 +. (0.4 *. t));
    long_idents = year >= 2018;
  }

let short_names = [| "p"; "q"; "s"; "n"; "x"; "y"; "k"; "v"; "t"; "m" |]

let long_parts =
  [| "buffer"; "handle"; "resource"; "context"; "session"; "request"; "payload";
     "config"; "stream"; "record" |]

(* Identifier suffixes are drawn from the caller's generator, so two
   runs from the same seed produce identical programs (a global counter
   would leak state across calls and break determinism). *)
let fresh_ident rng ~long prefix =
  let n = Rng.int rng 100000 in
  if long then
    Printf.sprintf "%s_%s_%d" prefix long_parts.(Rng.int rng (Array.length long_parts)) n
  else Printf.sprintf "%s%d" short_names.(Rng.int rng (Array.length short_names)) n

let rand_expr rng vars =
  let leaf () =
    if vars <> [||] && Rng.bernoulli rng 0.6 then Var (Rng.choice rng vars)
    else Int_lit (Rng.int rng 100)
  in
  let op = Rng.choice rng [| Add; Sub; Mul; Mod |] in
  if Rng.bernoulli rng 0.5 then Binop (op, leaf (), leaf ()) else leaf ()

let rand_cond rng vars =
  let lhs =
    if vars <> [||] && Rng.bernoulli rng 0.7 then Var (Rng.choice rng vars)
    else Int_lit (Rng.int rng 10)
  in
  Binop (Rng.choice rng [| Lt; Gt; Ne; Eq |], lhs, Int_lit (Rng.int rng 64))

let rec rand_stmts rng style ~depth ~count vars =
  if count = 0 then []
  else begin
    let vars_arr = Array.of_list vars in
    let stmt, vars' =
      if Rng.bernoulli rng 0.35 then begin
        let v = fresh_ident rng ~long:style.long_idents "tmp" in
        (Decl (Int, v, Some (rand_expr rng vars_arr)), v :: vars)
      end
      else if depth < 2 && Rng.bernoulli rng style.loop_prob then begin
        let i = fresh_ident rng ~long:false "i" in
        let body = rand_stmts rng style ~depth:(depth + 1) ~count:2 (i :: vars) in
        ( For
            {
              init = Decl (Int, i, Some (Int_lit 0));
              cond = Binop (Lt, Var i, Int_lit (4 + Rng.int rng 60));
              step = Assign (Var i, Binop (Add, Var i, Int_lit 1));
              body;
            },
          vars )
      end
      else if depth < 2 && Rng.bernoulli rng style.branch_prob then begin
        let then_ = rand_stmts rng style ~depth:(depth + 1) ~count:2 vars in
        let else_ =
          if Rng.bernoulli rng 0.4 then
            rand_stmts rng style ~depth:(depth + 1) ~count:1 vars
          else []
        in
        (If (rand_cond rng vars_arr, then_, else_), vars)
      end
      else if vars <> [] && Rng.bernoulli rng 0.5 then
        (Assign (Var (Rng.choice rng vars_arr), rand_expr rng vars_arr), vars)
      else (Expr_stmt (rand_expr rng vars_arr), vars)
    in
    stmt :: rand_stmts rng style ~depth ~count:(count - 1) vars'
  end

let helper rng style idx =
  let param = fresh_ident rng ~long:style.long_idents "arg" in
  let body = rand_stmts rng style ~depth:0 ~count:style.stmts_per_func [ param ] in
  {
    fname =
      (if style.long_idents then Printf.sprintf "process_%s_%d" long_parts.(idx mod Array.length long_parts) idx
       else Printf.sprintf "f%d" idx);
    ret = Int;
    params = [ (Int, param) ];
    body = body @ [ Return (Some (Var param)) ];
  }

let generate rng style =
  let helpers = List.init style.n_helpers (helper rng style) in
  let main_body =
    let calls =
      List.map
        (fun f -> Expr_stmt (Call (f.fname, [ Int_lit (Rng.int rng 10) ]))) helpers
    in
    let filler = rand_stmts rng style ~depth:0 ~count:style.stmts_per_func [] in
    filler @ calls @ [ Return (Some (Int_lit 0)) ]
  in
  let main = { fname = "main"; ret = Int; params = []; body = main_body } in
  {
    includes =
      "stdio.h" :: "stdlib.h" :: (if style.use_threads then [ "pthread.h" ] else []);
    functions = helpers @ [ main ];
  }
