open Prom_linalg

type kernel = {
  suite : string;
  kname : string;
  comp_intensity : float;
  mem_intensity : float;
  branch_divergence : float;
  local_mem : float;
  regs_per_thread : float;
  work_items : int;
  coalesced : float;
  transfer_bytes : float;
}

let suites = [ "amd-sdk"; "npb"; "nvidia-sdk"; "parboil"; "polybench"; "rodinia"; "shoc" ]

(* Suite profiles: (comp mean, mem mean, divergence mean, coalescing
   mean, work-item scale, registers-per-thread mean, transfer scale).
   The point is not realism of absolute values but that suites occupy
   distinct regions of the feature space, so a held-out suite is
   genuinely out of distribution. Register pressure moves the optimal
   coarsening factor: low-pressure suites (parboil) profit from deep
   coarsening while high-pressure ones (the SDK suites) spill early.
   Polybench kernels carry disproportionate host-device transfer volumes
   (large constant operand matrices relative to their small grids),
   which flips many of its mapping labels towards the CPU - the C3
   concept shift. *)
let profile = function
  | "amd-sdk" -> (40.0, 12.0, 0.15, 0.8, 14, 58.0, 1.0)
  | "npb" -> (120.0, 25.0, 0.10, 0.9, 16, 26.0, 1.0)
  | "nvidia-sdk" -> (60.0, 8.0, 0.20, 0.85, 15, 62.0, 1.0)
  | "parboil" -> (12.0, 3.0, 0.30, 0.9, 20, 8.0, 1.0)
  | "polybench" -> (220.0, 15.0, 0.05, 0.95, 13, 18.0, 96.0)
  | "rodinia" -> (90.0, 55.0, 0.45, 0.5, 16, 30.0, 2.0)
  | "shoc" -> (30.0, 30.0, 0.25, 0.7, 12, 36.0, 0.5)
  | s -> invalid_arg ("Opencl: unknown suite " ^ s)

let clamp lo hi x = Stdlib.max lo (Stdlib.min hi x)

let sample_kernel rng ~suite =
  let comp_mu, mem_mu, div_mu, coal_mu, wi_log, regs_mu, transfer_scale = profile suite in
  let pos mu spread = Stdlib.max 0.5 (Rng.gaussian rng ~mu ~sigma:(mu *. spread)) in
  {
    suite;
    kname = Printf.sprintf "%s_k%d" suite (Rng.int rng 100000);
    comp_intensity = pos comp_mu 0.4;
    mem_intensity = pos mem_mu 0.4;
    branch_divergence = clamp 0.0 1.0 (Rng.gaussian rng ~mu:div_mu ~sigma:0.1);
    local_mem = clamp 0.0 1.0 (Rng.float rng 1.0);
    regs_per_thread = Stdlib.max 6.0 (Rng.gaussian rng ~mu:regs_mu ~sigma:6.0);
    work_items = 1 lsl (wi_log + Rng.int rng 5);
    coalesced = clamp 0.05 1.0 (Rng.gaussian rng ~mu:coal_mu ~sigma:0.15);
    transfer_bytes = pos (float_of_int (1 lsl wi_log) *. 16.0 *. transfer_scale) 0.5;
  }

(* Register pressure is deliberately NOT part of the observable
   features: it is a compiler-internal artifact of each suite's coding
   style. Models can only learn its suite-typical effect on the label,
   which is exactly what breaks when an unseen suite appears - the
   latent-variable shift behind the paper's C1/C3 drift. *)
let feature_vector k =
  [|
    log (1.0 +. k.comp_intensity);
    log (1.0 +. k.mem_intensity);
    k.branch_divergence;
    k.local_mem;
    log (float_of_int k.work_items);
    k.coalesced;
    log (1.0 +. k.transfer_bytes);
    k.comp_intensity /. (1.0 +. k.mem_intensity);
  |]

type gpu = {
  gpu_name : string;
  compute_throughput : float;
  mem_bandwidth : float;
  sched_overhead : float;
  reg_budget : float;
  spill_penalty : float;
}

let gpus =
  [
    {
      gpu_name = "AMD-HD5900";
      compute_throughput = 2000.0;
      mem_bandwidth = 150.0;
      sched_overhead = 0.02;
      reg_budget = 96.0;
      spill_penalty = 3.0;
    };
    {
      gpu_name = "AMD-Tahiti7970";
      compute_throughput = 3500.0;
      mem_bandwidth = 260.0;
      sched_overhead = 0.004;
      reg_budget = 160.0;
      spill_penalty = 2.0;
    };
    {
      gpu_name = "NVIDIA-GTX480";
      compute_throughput = 1300.0;
      mem_bandwidth = 170.0;
      sched_overhead = 0.02;
      reg_budget = 64.0;
      spill_penalty = 4.0;
    };
    {
      gpu_name = "NVIDIA-K20c";
      compute_throughput = 3200.0;
      mem_bandwidth = 200.0;
      sched_overhead = 0.03;
      reg_budget = 220.0;
      spill_penalty = 2.5;
    };
  ]

let coarsening_factors = [| 1; 2; 4; 8; 16; 32 |]

let coarsened_runtime gpu k cf =
  if cf < 1 then invalid_arg "Opencl.coarsened_runtime: factor must be >= 1";
  let cff = float_of_int cf in
  let items = float_of_int k.work_items in
  (* Work per thread grows with cf; thread count shrinks. *)
  let threads = items /. cff in
  (* ILP benefit saturates around 4x. *)
  let ilp = 1.0 +. (0.35 *. log (Stdlib.min cff 4.0) /. log 2.0) in
  let comp_time = items *. k.comp_intensity /. (gpu.compute_throughput *. ilp) in
  let mem_eff = gpu.mem_bandwidth *. (0.3 +. (0.7 *. k.coalesced)) in
  (* Coarsening degrades coalescing slightly. *)
  let mem_time =
    items *. k.mem_intensity /. mem_eff *. (1.0 +. (0.05 *. log cff /. log 2.0))
  in
  (* Per-thread scheduling/launch cost: the overhead coarsening
     amortizes. *)
  let sched_time = gpu.sched_overhead *. threads in
  let divergence_penalty = 1.0 +. (k.branch_divergence *. 0.5 *. log cff /. log 32.0) in
  let regs = k.regs_per_thread *. (1.0 +. (0.18 *. (cff -. 1.0))) in
  let spill =
    if regs > gpu.reg_budget then
      1.0 +. (gpu.spill_penalty *. (regs -. gpu.reg_budget) /. gpu.reg_budget)
    else 1.0
  in
  ((comp_time +. mem_time) *. divergence_penalty *. spill) +. sched_time

let best_coarsening gpu k =
  let best = ref (coarsening_factors.(0), coarsened_runtime gpu k coarsening_factors.(0)) in
  Array.iter
    (fun cf ->
      let t = coarsened_runtime gpu k cf in
      if t < snd !best then best := (cf, t))
    coarsening_factors;
  !best

let cpu_runtime k =
  let items = float_of_int k.work_items in
  (* An aggregate multicore CPU: no transfer or launch cost, modest
     throughput and bandwidth, divergence-insensitive. *)
  let comp = items *. k.comp_intensity /. 450.0 in
  let mem = items *. k.mem_intensity /. 60.0 in
  comp +. mem

let gpu_runtime gpu k =
  (* PCIe transfer plus a fixed launch latency — what makes the CPU win
     on small or poorly coalesced kernels. *)
  let transfer = k.transfer_bytes /. 512.0 in
  let launch = 20000.0 in
  transfer +. launch +. coarsened_runtime gpu k 1

let best_device gpu k = if cpu_runtime k <= gpu_runtime gpu k then 0 else 1

let kernel_to_ast rng k =
  let open Cast in
  (* Statement counts derived from the descriptor, kept small so token
     sequences stay short. *)
  let n_arith = 1 + Stdlib.min 12 (int_of_float (k.comp_intensity /. 20.0)) in
  let n_mem = 1 + Stdlib.min 12 (int_of_float (k.mem_intensity /. 8.0)) in
  let n_branch = Stdlib.min 4 (int_of_float (k.branch_divergence *. 6.0)) in
  let gid = "gid" in
  let arith i =
    let v = Printf.sprintf "t%d" i in
    Decl
      ( Float,
        v,
        Some
          (Binop
             ( Rng.choice rng [| Add; Sub; Mul |],
               Index (Var "a", Var gid),
               Float_lit (Rng.float rng 4.0) )) )
  in
  let mem i =
    Assign
      ( Index (Var "b", Binop (Add, Var gid, Int_lit i)),
        Binop (Mul, Index (Var "a", Var gid), Float_lit 2.0) )
  in
  let branch i =
    If
      ( Binop (Lt, Binop (Mod, Var gid, Int_lit (2 + i)), Int_lit 1),
        [ Assign (Index (Var "b", Var gid), Float_lit 0.0) ],
        [] )
  in
  let body =
    Decl (Int, gid, Some (Call ("get_global_id", [ Int_lit 0 ])))
    :: List.init n_arith arith
    @ List.init n_mem mem
    @ List.init n_branch branch
    @ (if k.local_mem > 0.5 then [ Expr_stmt (Call ("barrier", [ Var "CLK_LOCAL_MEM_FENCE" ])) ]
       else [])
  in
  {
    includes = [];
    functions =
      [
        {
          fname = "kernel_" ^ k.kname;
          ret = Void;
          params = [ (Ptr Float, "a"); (Ptr Float, "b") ];
          body;
        };
      ];
  }
