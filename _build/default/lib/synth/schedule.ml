open Prom_linalg

type network = Bert_tiny | Bert_base | Bert_medium | Bert_large

let networks = [ Bert_tiny; Bert_base; Bert_medium; Bert_large ]

let network_name = function
  | Bert_tiny -> "BERT-tiny"
  | Bert_base -> "BERT-base"
  | Bert_medium -> "BERT-medium"
  | Bert_large -> "BERT-large"

type workload = { net : network; m : int; n : int; k : int }

(* The drift variable of C5: each BERT variant ships with a different
   quantization (int8 for tiny, bf16 for medium, fp32 for base/large).
   Element width changes the effective SIMD lane count and the cache
   footprint of a tile. It is visible in the tensor-program text (and so
   in the feature vector), but a cost model trained only on fp32
   BERT-base data has never seen its other values - the classic
   covariate shift of the paper's unseen network variants. *)
let element_bytes = function
  | Bert_tiny -> 1
  | Bert_medium -> 2
  | Bert_base | Bert_large -> 4

let hidden_of = function
  | Bert_tiny -> 128
  | Bert_base -> 768
  | Bert_medium -> 512
  | Bert_large -> 1024

let sample_workload rng net =
  let h = hidden_of net in
  (* Layers: QKV projections (h x h), FFN up (h x 4h), FFN down (4h x h),
     attention scores (seq x seq); sequence length varies. *)
  let seq = 64 * (1 + Rng.int rng 6) in
  match Rng.int rng 4 with
  | 0 -> { net; m = seq; n = h; k = h }
  | 1 -> { net; m = seq; n = 4 * h; k = h }
  | 2 -> { net; m = seq; n = h; k = 4 * h }
  | _ -> { net; m = seq; n = seq; k = h / (8 + Rng.int rng 8) }

type schedule = {
  tile_m : int;
  tile_n : int;
  tile_k : int;
  unroll : int;
  vectorize : int;
  parallel : int;
}

let tile_choices = [| 4; 8; 16; 32; 64; 128 |]
let unroll_choices = [| 1; 2; 4; 8 |]
let vec_choices = [| 1; 4; 8; 16 |]
let par_choices = [| 1; 2; 4; 8; 12 |]

let random_schedule rng =
  {
    tile_m = Rng.choice rng tile_choices;
    tile_n = Rng.choice rng tile_choices;
    tile_k = Rng.choice rng tile_choices;
    unroll = Rng.choice rng unroll_choices;
    vectorize = Rng.choice rng vec_choices;
    parallel = Rng.choice rng par_choices;
  }

let mutate rng s =
  match Rng.int rng 6 with
  | 0 -> { s with tile_m = Rng.choice rng tile_choices }
  | 1 -> { s with tile_n = Rng.choice rng tile_choices }
  | 2 -> { s with tile_k = Rng.choice rng tile_choices }
  | 3 -> { s with unroll = Rng.choice rng unroll_choices }
  | 4 -> { s with vectorize = Rng.choice rng vec_choices }
  | _ -> { s with parallel = Rng.choice rng par_choices }

let throughput w s =
  let fm = float_of_int in
  let bytes = fm (element_bytes w.net) in
  (* Working set of one tile in KB. *)
  let tile_kb =
    fm ((s.tile_m * s.tile_k) + (s.tile_k * s.tile_n) + (s.tile_m * s.tile_n))
    *. bytes /. 1024.0
  in
  (* L2-resident tiles run at full speed; beyond 512KB locality decays. *)
  let cache_factor =
    if tile_kb <= 32.0 then 0.75 (* tiny tiles: loop overhead dominates *)
    else if tile_kb <= 512.0 then 1.0
    else 1.0 /. (1.0 +. ((tile_kb -. 512.0) /. 512.0))
  in
  (* Vectorization helps up to the hardware lane count (32 bytes of
     SIMD divided by the element width), and only if tile_n is a
     multiple of the vector width. *)
  let vec_eff =
    let hw_lanes = 32 / element_bytes w.net in
    let lanes = Stdlib.min s.vectorize hw_lanes in
    let aligned = s.tile_n mod Stdlib.max 1 s.vectorize = 0 in
    fm lanes *. (if aligned then 1.0 else 0.55)
  in
  (* Unrolling buys ILP until register spills (unroll * vectorize > 32). *)
  let unroll_eff =
    let gain = 1.0 +. (0.2 *. log (fm s.unroll) /. log 2.0) in
    if s.unroll * s.vectorize > 32 then gain *. 0.6 else gain
  in
  (* Parallel speedup saturates with workload size (12-core machine). *)
  let chunks = fm ((w.m + (s.tile_m - 1)) / s.tile_m) in
  let par_eff = Stdlib.min (fm s.parallel) (Stdlib.max 1.0 (chunks /. 2.0)) in
  (* Reuse along k: larger tile_k amortizes loads but too large thrashes. *)
  let k_factor =
    let r = fm s.tile_k /. fm (Stdlib.max 1 w.k) in
    if r > 1.0 then 0.8 else 1.0 +. (0.15 *. log (1.0 +. fm s.tile_k /. 16.0))
  in
  let base = 8.0 (* GFLOP/s scalar single-thread baseline *) in
  base *. cache_factor *. vec_eff *. unroll_eff *. par_eff *. k_factor

let feature_vector w s =
  let fm = float_of_int in
  [|
    log (fm w.m);
    log (fm w.n);
    log (fm w.k);
    log (fm s.tile_m);
    log (fm s.tile_n);
    log (fm s.tile_k);
    fm s.unroll;
    fm s.vectorize;
    fm s.parallel;
    log (fm ((s.tile_m * s.tile_k) + (s.tile_k * s.tile_n) + (s.tile_m * s.tile_n)));
    (if s.tile_n mod Stdlib.max 1 s.vectorize = 0 then 1.0 else 0.0);
    fm (s.unroll * s.vectorize);
    fm (element_bytes w.net);
  |]

let oracle ?samples:_ _rng w =
  (* The knob space is small enough to enumerate exactly. *)
  let best = ref 0.0 in
  Array.iter (fun tile_m ->
      Array.iter (fun tile_n ->
          Array.iter (fun tile_k ->
              Array.iter (fun unroll ->
                  Array.iter (fun vectorize ->
                      Array.iter (fun parallel ->
                          let t =
                            throughput w
                              { tile_m; tile_n; tile_k; unroll; vectorize; parallel }
                          in
                          if t > !best then best := t)
                        par_choices)
                    vec_choices)
                unroll_choices)
            tile_choices)
        tile_choices)
    tile_choices;
  !best
