(** Random generation of benign C-like programs, with an era knob that
    shifts coding style the way the paper's CVE timeline does: early-era
    samples are short, direct, single-function; late-era samples use
    helper functions, loops over resources and thread entry points.
    This is the covariate-shift generator behind case study C4. *)

open Prom_linalg

type style = {
  era : int;  (** nominal year, 2013..2023 *)
  n_helpers : int;
  stmts_per_func : int;
  loop_prob : float;
  branch_prob : float;
  use_threads : bool;
  long_idents : bool;
}

(** [style_of_era rng year] samples a style whose complexity grows with
    [year]. Raises [Invalid_argument] for years outside 2010..2030. *)
val style_of_era : Rng.t -> int -> style

(** [generate rng style] produces a self-contained program with a
    [main] plus [style.n_helpers] helpers. *)
val generate : Rng.t -> style -> Cast.program

(** [fresh_ident rng ~long prefix] draws an identifier in the era's
    naming flavor. *)
val fresh_ident : Rng.t -> long:bool -> string -> string
