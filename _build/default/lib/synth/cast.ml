type ctype = Void | Int | Long | Float | Char | Ptr of ctype

type binop = Add | Sub | Mul | Div | Mod | Lt | Le | Gt | Ge | Eq | Ne | And | Or

type unop = Neg | Not | Deref | Addr

type expr =
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | Var of string
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Call of string * expr list
  | Index of expr * expr

type stmt =
  | Expr_stmt of expr
  | Decl of ctype * string * expr option
  | Array_decl of ctype * string * int
  | Assign of expr * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of { init : stmt; cond : expr; step : stmt; body : stmt list }
  | Return of expr option

type func = {
  fname : string;
  ret : ctype;
  params : (ctype * string) list;
  body : stmt list;
}

type program = { includes : string list; functions : func list }

let rec pp_ctype fmt = function
  | Void -> Format.pp_print_string fmt "void"
  | Int -> Format.pp_print_string fmt "int"
  | Long -> Format.pp_print_string fmt "long"
  | Float -> Format.pp_print_string fmt "float"
  | Char -> Format.pp_print_string fmt "char"
  | Ptr t -> Format.fprintf fmt "%a*" pp_ctype t

let binop_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="
  | And -> "&&"
  | Or -> "||"

let unop_str = function Neg -> "-" | Not -> "!" | Deref -> "*" | Addr -> "&"

let rec pp_expr fmt = function
  | Int_lit n -> Format.fprintf fmt "%d" n
  | Float_lit f -> Format.fprintf fmt "%gf" f
  | Str_lit s -> Format.fprintf fmt "%S" s
  | Var v -> Format.pp_print_string fmt v
  | Binop (op, a, b) -> Format.fprintf fmt "(%a %s %a)" pp_expr a (binop_str op) pp_expr b
  | Unop (op, e) -> Format.fprintf fmt "%s%a" (unop_str op) pp_expr e
  | Call (f, args) ->
      Format.fprintf fmt "%s(%a)" f
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           pp_expr)
        args
  | Index (a, i) -> Format.fprintf fmt "%a[%a]" pp_expr a pp_expr i

let rec pp_stmt fmt = function
  | Expr_stmt e -> Format.fprintf fmt "%a;" pp_expr e
  | Decl (t, v, None) -> Format.fprintf fmt "%a %s;" pp_ctype t v
  | Decl (t, v, Some e) -> Format.fprintf fmt "%a %s = %a;" pp_ctype t v pp_expr e
  | Array_decl (t, v, n) -> Format.fprintf fmt "%a %s[%d];" pp_ctype t v n
  | Assign (lhs, rhs) -> Format.fprintf fmt "%a = %a;" pp_expr lhs pp_expr rhs
  | If (cond, then_, []) ->
      Format.fprintf fmt "@[<v 2>if (%a) {@,%a@]@,}" pp_expr cond pp_block then_
  | If (cond, then_, else_) ->
      Format.fprintf fmt "@[<v 2>if (%a) {@,%a@]@,@[<v 2>} else {@,%a@]@,}" pp_expr cond
        pp_block then_ pp_block else_
  | While (cond, body) ->
      Format.fprintf fmt "@[<v 2>while (%a) {@,%a@]@,}" pp_expr cond pp_block body
  | For { init; cond; step; body } ->
      Format.fprintf fmt "@[<v 2>for (%a %a; %a) {@,%a@]@,}" pp_for_header init pp_expr
        cond pp_for_step step pp_block body
  | Return None -> Format.pp_print_string fmt "return;"
  | Return (Some e) -> Format.fprintf fmt "return %a;" pp_expr e

and pp_block fmt stmts =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_stmt fmt stmts

(* A for-loop header reuses statement syntax minus the trailing
   semicolon placement quirks. *)
and pp_for_header fmt = function
  | Decl (t, v, Some e) -> Format.fprintf fmt "%a %s = %a;" pp_ctype t v pp_expr e
  | Assign (lhs, rhs) -> Format.fprintf fmt "%a = %a;" pp_expr lhs pp_expr rhs
  | s -> pp_stmt fmt s

and pp_for_step fmt = function
  | Assign (lhs, rhs) -> Format.fprintf fmt "%a = %a" pp_expr lhs pp_expr rhs
  | Expr_stmt e -> pp_expr fmt e
  | s -> pp_stmt fmt s

let pp_func fmt f =
  Format.fprintf fmt "@[<v 2>%a %s(%a) {@,%a@]@,}" pp_ctype f.ret f.fname
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       (fun fmt (t, v) -> Format.fprintf fmt "%a %s" pp_ctype t v))
    f.params pp_block f.body

let pp_program fmt p =
  List.iter (fun inc -> Format.fprintf fmt "#include <%s>@," inc) p.includes;
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.fprintf fmt "@,@,")
    pp_func fmt p.functions

let to_string p = Format.asprintf "@[<v>%a@]" pp_program p

type stats = {
  n_functions : int;
  n_statements : int;
  n_calls : int;
  n_loops : int;
  n_branches : int;
  n_decls : int;
  n_derefs : int;
  max_depth : int;
}

let stats_of p =
  let calls = ref 0 and derefs = ref 0 in
  let rec walk_expr = function
    | Int_lit _ | Float_lit _ | Str_lit _ | Var _ -> ()
    | Binop (_, a, b) ->
        walk_expr a;
        walk_expr b
    | Unop (op, e) ->
        if op = Deref then incr derefs;
        walk_expr e
    | Call (_, args) ->
        incr calls;
        List.iter walk_expr args
    | Index (a, i) ->
        walk_expr a;
        walk_expr i
  in
  let stmts = ref 0 and loops = ref 0 and branches = ref 0 and decls = ref 0 in
  let depth = ref 0 in
  let rec walk_stmt d s =
    incr stmts;
    if d > !depth then depth := d;
    match s with
    | Expr_stmt e -> walk_expr e
    | Decl (_, _, init) ->
        incr decls;
        Option.iter walk_expr init
    | Array_decl _ -> incr decls
    | Assign (lhs, rhs) ->
        walk_expr lhs;
        walk_expr rhs
    | If (cond, then_, else_) ->
        incr branches;
        walk_expr cond;
        List.iter (walk_stmt (d + 1)) then_;
        List.iter (walk_stmt (d + 1)) else_
    | While (cond, body) ->
        incr loops;
        walk_expr cond;
        List.iter (walk_stmt (d + 1)) body
    | For { init; cond; step; body } ->
        incr loops;
        walk_stmt d init;
        walk_expr cond;
        walk_stmt d step;
        List.iter (walk_stmt (d + 1)) body
    | Return e -> Option.iter walk_expr e
  in
  List.iter (fun f -> List.iter (walk_stmt 1) f.body) p.functions;
  {
    n_functions = List.length p.functions;
    n_statements = !stmts;
    n_calls = !calls;
    n_loops = !loops;
    n_branches = !branches;
    n_decls = !decls;
    n_derefs = !derefs;
    max_depth = !depth;
  }

let calls_of p =
  let acc = ref [] in
  let rec walk_expr = function
    | Int_lit _ | Float_lit _ | Str_lit _ | Var _ -> ()
    | Binop (_, a, b) ->
        walk_expr a;
        walk_expr b
    | Unop (_, e) -> walk_expr e
    | Call (f, args) ->
        acc := f :: !acc;
        List.iter walk_expr args
    | Index (a, i) ->
        walk_expr a;
        walk_expr i
  in
  let rec walk_stmt = function
    | Expr_stmt e -> walk_expr e
    | Decl (_, _, init) -> Option.iter walk_expr init
    | Array_decl _ -> ()
    | Assign (lhs, rhs) ->
        walk_expr lhs;
        walk_expr rhs
    | If (cond, then_, else_) ->
        walk_expr cond;
        List.iter walk_stmt then_;
        List.iter walk_stmt else_
    | While (cond, body) ->
        walk_expr cond;
        List.iter walk_stmt body
    | For { init; cond; step; body } ->
        walk_stmt init;
        walk_expr cond;
        walk_stmt step;
        List.iter walk_stmt body
    | Return e -> Option.iter walk_expr e
  in
  List.iter (fun f -> List.iter walk_stmt f.body) p.functions;
  List.rev !acc
