lib/synth/cast.ml: Format List Option
