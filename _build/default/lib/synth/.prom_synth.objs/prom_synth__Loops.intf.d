lib/synth/loops.mli: Cast Prom_linalg Rng Vec
