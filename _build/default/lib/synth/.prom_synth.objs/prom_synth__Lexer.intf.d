lib/synth/lexer.mli:
