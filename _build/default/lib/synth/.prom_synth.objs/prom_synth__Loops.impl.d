lib/synth/loops.ml: Array Cast Generator Printf Prom_linalg Rng Stdlib String
