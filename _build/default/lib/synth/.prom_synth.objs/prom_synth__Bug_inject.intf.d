lib/synth/bug_inject.mli: Cast Prom_linalg Rng
