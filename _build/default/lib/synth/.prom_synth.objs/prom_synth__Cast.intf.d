lib/synth/cast.mli: Format
