lib/synth/feature.mli: Cast Lexer Prom_linalg Vec
