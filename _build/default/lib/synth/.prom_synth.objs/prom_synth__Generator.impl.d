lib/synth/generator.ml: Array Cast List Printf Prom_linalg Rng Stdlib
