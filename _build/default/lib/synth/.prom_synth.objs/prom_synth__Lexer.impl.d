lib/synth/lexer.ml: Array Buffer Char List Printf String
