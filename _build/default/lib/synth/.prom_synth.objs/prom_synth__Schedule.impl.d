lib/synth/schedule.ml: Array Prom_linalg Rng Stdlib
