lib/synth/feature.ml: Array Cast Lexer List Stdlib String
