lib/synth/bug_inject.ml: Cast Generator List Printf Prom_linalg Rng
