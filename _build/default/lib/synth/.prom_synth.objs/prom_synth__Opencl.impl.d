lib/synth/opencl.ml: Array Cast List Printf Prom_linalg Rng Stdlib
