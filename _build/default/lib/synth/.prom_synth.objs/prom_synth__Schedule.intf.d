lib/synth/schedule.mli: Prom_linalg Rng Vec
