lib/synth/generator.mli: Cast Prom_linalg Rng
