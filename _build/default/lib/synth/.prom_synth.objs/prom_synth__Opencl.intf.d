lib/synth/opencl.mli: Cast Prom_linalg Rng Vec
