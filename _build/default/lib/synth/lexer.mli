(** A hand-written lexer for the C subset emitted by {!Cast}. The
    sequence models of case study C4 consume normalized token streams,
    mirroring how VulDeePecker and CodeXGLUE tokenize source code. *)

type token =
  | Kw of string  (** keyword: [int], [for], [return], ... *)
  | Ident of string
  | Int_const of int
  | Float_const of float
  | Str_const of string
  | Punct of string  (** operators and punctuation, longest-match *)

val keywords : string list

(** [tokenize src] lexes a source string. Raises [Failure] with a
    position message on characters outside the language. Comments
    ([//... ] and [/* ... */]) and preprocessor lines ([#...]) are
    skipped. *)
val tokenize : string -> token list

val token_to_string : token -> string

(** Mapping of tokens to bounded integer ids for sequence models.
    Keywords, punctuation and known library calls get stable dedicated
    ids; all other identifiers and literals are normalized into hash
    buckets, the usual trick for open vocabularies. Id 0 is reserved
    for padding. *)
module Vocab : sig
  type t

  (** [create ~ident_buckets] builds the vocabulary (dedicated ids plus
      [ident_buckets] identifier buckets and small literal buckets). *)
  val create : ident_buckets:int -> t

  val size : t -> int
  val id_of : t -> token -> int
  val encode : t -> token list -> int array
end
