open Prom_linalg

type loop = {
  family : string;
  trip_count : int;
  stride : int;
  dep_distance : int;
  arith_ops : float;
  mem_ops : float;
  has_reduction : bool;
  element_bytes : int;
  alignment : bool;
}

let families =
  [
    "saxpy"; "dot"; "stencil1d"; "stencil2d"; "gemm-inner"; "reduction"; "prefix";
    "gather"; "scatter"; "histogram"; "fir"; "conv"; "interp"; "cmplx-mul";
    "norm"; "scale"; "triad"; "update";
  ]

(* Family profiles: (trip-count log-mean, stride choices, dependence
   distance choices, arith mean, mem mean, reduction probability). *)
let profile = function
  | "saxpy" -> (10, [| 1 |], [| 0 |], 2.0, 3.0, 0.0)
  | "dot" -> (11, [| 1 |], [| 0 |], 2.0, 2.0, 1.0)
  | "stencil1d" -> (9, [| 1 |], [| 0; 1 |], 4.0, 3.0, 0.0)
  | "stencil2d" -> (8, [| 1; 2 |], [| 1; 2 |], 6.0, 5.0, 0.0)
  | "gemm-inner" -> (9, [| 1 |], [| 0 |], 2.0, 2.0, 1.0)
  | "reduction" -> (12, [| 1 |], [| 0 |], 1.0, 1.0, 1.0)
  | "prefix" -> (10, [| 1 |], [| 1 |], 2.0, 2.0, 0.0)
  | "gather" -> (9, [| 2; 4; 8 |], [| 0 |], 2.0, 4.0, 0.0)
  | "scatter" -> (9, [| 2; 4; 8 |], [| 0 |], 1.0, 4.0, 0.0)
  | "histogram" -> (10, [| 1; 2 |], [| 1 |], 2.0, 3.0, 0.0)
  | "fir" -> (9, [| 1 |], [| 0 |], 8.0, 4.0, 1.0)
  | "conv" -> (8, [| 1 |], [| 0 |], 9.0, 6.0, 0.0)
  | "interp" -> (9, [| 1; 2 |], [| 0 |], 5.0, 4.0, 0.0)
  | "cmplx-mul" -> (9, [| 2 |], [| 0 |], 6.0, 4.0, 0.0)
  | "norm" -> (10, [| 1 |], [| 0 |], 3.0, 2.0, 1.0)
  | "scale" -> (11, [| 1 |], [| 0 |], 1.0, 2.0, 0.0)
  | "triad" -> (10, [| 1 |], [| 0 |], 2.0, 3.0, 0.0)
  | "update" -> (9, [| 1 |], [| 0; 2; 4 |], 2.0, 3.0, 0.0)
  | f -> invalid_arg ("Loops: unknown family " ^ f)

let sample_loop rng ~family =
  let tc_log, strides, deps, arith_mu, mem_mu, red_p = profile family in
  {
    family;
    trip_count = (1 lsl (tc_log + Rng.int rng 4)) + Rng.int rng 17;
    stride = Rng.choice rng strides;
    dep_distance = Rng.choice rng deps;
    arith_ops = Stdlib.max 0.5 (Rng.gaussian rng ~mu:arith_mu ~sigma:(arith_mu *. 0.3));
    mem_ops = Stdlib.max 0.5 (Rng.gaussian rng ~mu:mem_mu ~sigma:(mem_mu *. 0.3));
    has_reduction = Rng.bernoulli rng red_p;
    element_bytes = (if Rng.bool rng then 4 else 8);
    alignment = Rng.bernoulli rng 0.7;
  }

let feature_vector l =
  [|
    log (float_of_int l.trip_count);
    float_of_int l.stride;
    float_of_int l.dep_distance;
    l.arith_ops;
    l.mem_ops;
    (if l.has_reduction then 1.0 else 0.0);
    float_of_int l.element_bytes /. 8.0;
    (if l.alignment then 1.0 else 0.0);
    l.arith_ops /. (1.0 +. l.mem_ops);
  |]

let vfs = [| 1; 2; 4; 8; 16; 32; 64 |]
let ifs = [| 1; 2; 4; 8; 16 |]

let configs =
  Array.concat
    (Array.to_list (Array.map (fun vf -> Array.map (fun if_ -> (vf, if_)) ifs) vfs))

let config_label (vf, if_) =
  let rec find i =
    if i >= Array.length configs then
      invalid_arg (Printf.sprintf "Loops.config_label: unknown config (%d,%d)" vf if_)
    else if configs.(i) = (vf, if_) then i
    else find (i + 1)
  in
  find 0

let label_config i =
  if i < 0 || i >= Array.length configs then invalid_arg "Loops.label_config: out of range";
  configs.(i)

let runtime l (vf, if_) =
  if vf < 1 || if_ < 1 then invalid_arg "Loops.runtime: factors must be >= 1";
  let n = float_of_int l.trip_count in
  let vff = float_of_int vf and iff = float_of_int if_ in
  (* Vector lanes available given element width (e.g. 8 floats or 4
     doubles for 256-bit SIMD); VF beyond that wastes work. *)
  let hw_lanes = 32.0 /. float_of_int l.element_bytes in
  let effective_vf = Stdlib.min vff hw_lanes in
  (* Legality: a loop-carried dependence at distance d limits VF to d. *)
  let legal_vf =
    if l.dep_distance = 0 then effective_vf
    else Stdlib.min effective_vf (float_of_int l.dep_distance)
  in
  let useful_vf = Stdlib.max 1.0 legal_vf in
  (* Strided access divides effective bandwidth. *)
  let stride_factor = 1.0 /. float_of_int l.stride in
  let simd_mem_speedup = Stdlib.max 1.0 (useful_vf *. stride_factor) in
  let arith_time = n *. l.arith_ops /. useful_vf in
  let mem_time = n *. l.mem_ops /. simd_mem_speedup in
  (* Interleaving hides latency; the gain saturates at the loop's
     available instruction-level parallelism, which scales with the
     amount of independent arithmetic per iteration. *)
  let max_ilp = 1.0 +. (l.arith_ops /. 4.0) in
  let ilp_gain = Stdlib.min max_ilp (1.0 +. (0.3 *. log iff /. log 2.0)) in
  (* Register pressure: wider elements burn registers faster. *)
  let regs = useful_vf *. iff *. (float_of_int l.element_bytes /. 4.0) in
  let spill = if regs > 48.0 then 1.0 +. ((regs -. 48.0) /. 32.0) else 1.0 in
  (* Reductions serialize partially at high VF*IF. *)
  let reduction_penalty =
    if l.has_reduction then 1.0 +. (0.18 *. log (vff *. iff) /. log 2.0) else 1.0
  in
  (* Remainder-loop overhead when the trip count does not amortize. *)
  let chunk = vff *. iff in
  let remainder = 1.0 +. (1.5 *. chunk /. n) in
  let misalign = if l.alignment then 1.0 else 1.0 +. (0.05 *. log (1.0 +. vff)) in
  let wasted = vff /. useful_vf in
  (arith_time +. mem_time) /. ilp_gain *. spill *. reduction_penalty *. remainder
  *. misalign *. sqrt wasted

let best_config l =
  let best = ref (configs.(0), runtime l configs.(0)) in
  Array.iter
    (fun cfg ->
      let t = runtime l cfg in
      if t < snd !best then best := (cfg, t))
    configs;
  !best

let loop_to_ast rng l =
  let open Cast in
  let i = Generator.fresh_ident rng ~long:false "i" in
  let a = "a" and b = "b" and c = "c" in
  let idx v = Index (Var v, Binop (Mul, Var i, Int_lit l.stride)) in
  let body =
    if l.has_reduction then
      [ Assign (Var "acc", Binop (Add, Var "acc", Binop (Mul, idx a, idx b))) ]
    else
      [
        Assign
          ( idx c,
            Binop
              ( Add,
                Binop (Mul, idx a, Float_lit 1.5),
                if l.dep_distance > 0 then
                  Index (Var c, Binop (Sub, Var i, Int_lit l.dep_distance))
                else idx b ) );
      ]
  in
  let loop_stmt =
    For
      {
        init = Decl (Int, i, Some (Int_lit (if l.dep_distance > 0 then l.dep_distance else 0)));
        cond = Binop (Lt, Var i, Int_lit l.trip_count);
        step = Assign (Var i, Binop (Add, Var i, Int_lit 1));
        body;
      }
  in
  let elt_ty = if l.element_bytes = 4 then Float else Long in
  let kernel =
    {
      fname = Printf.sprintf "%s_loop" (String.map (fun ch -> if ch = '-' then '_' else ch) l.family);
      ret = Void;
      params = [ (Ptr elt_ty, a); (Ptr elt_ty, b); (Ptr elt_ty, c) ];
      body =
        (if l.has_reduction then [ Decl (Float, "acc", Some (Float_lit 0.0)) ] else [])
        @ [ loop_stmt ];
    }
  in
  { includes = []; functions = [ kernel ] }
