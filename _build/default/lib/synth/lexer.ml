type token =
  | Kw of string
  | Ident of string
  | Int_const of int
  | Float_const of float
  | Str_const of string
  | Punct of string

let keywords =
  [
    "void"; "int"; "long"; "float"; "char"; "if"; "else"; "while"; "for"; "return";
    "sizeof"; "struct"; "static"; "const";
  ]

let is_keyword s = List.mem s keywords

let punct_table =
  (* Longest tokens first so maximal munch works by scanning in order. *)
  [
    "<="; ">="; "=="; "!="; "&&"; "||"; "++"; "--"; "->";
    "+"; "-"; "*"; "/"; "%"; "<"; ">"; "="; "!"; "&"; "|";
    "("; ")"; "{"; "}"; "["; "]"; ";"; ","; ".";
  ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let pos = ref 0 in
  let peek off = if !pos + off < n then Some src.[!pos + off] else None in
  let fail msg = failwith (Printf.sprintf "Lexer: %s at offset %d" msg !pos) in
  while !pos < n do
    let c = src.[!pos] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr pos
    else if c = '#' then begin
      (* Skip preprocessor directives to end of line. *)
      while !pos < n && src.[!pos] <> '\n' do
        incr pos
      done
    end
    else if c = '/' && peek 1 = Some '/' then
      while !pos < n && src.[!pos] <> '\n' do
        incr pos
      done
    else if c = '/' && peek 1 = Some '*' then begin
      pos := !pos + 2;
      let closed = ref false in
      while (not !closed) && !pos + 1 < n do
        if src.[!pos] = '*' && src.[!pos + 1] = '/' then begin
          closed := true;
          pos := !pos + 2
        end
        else incr pos
      done;
      if not !closed then fail "unterminated comment"
    end
    else if is_ident_start c then begin
      let start = !pos in
      while !pos < n && is_ident_char src.[!pos] do
        incr pos
      done;
      let word = String.sub src start (!pos - start) in
      tokens := (if is_keyword word then Kw word else Ident word) :: !tokens
    end
    else if is_digit c then begin
      let start = !pos in
      while !pos < n && is_digit src.[!pos] do
        incr pos
      done;
      let is_float = !pos < n && src.[!pos] = '.' in
      if is_float then begin
        incr pos;
        while !pos < n && is_digit src.[!pos] do
          incr pos
        done
      end;
      (* Optional float suffix. *)
      let has_suffix = !pos < n && (src.[!pos] = 'f' || src.[!pos] = 'F') in
      let text = String.sub src start (!pos - start) in
      if has_suffix then incr pos;
      if is_float || has_suffix then tokens := Float_const (float_of_string text) :: !tokens
      else tokens := Int_const (int_of_string text) :: !tokens
    end
    else if c = '"' then begin
      incr pos;
      let buf = Buffer.create 16 in
      let closed = ref false in
      while (not !closed) && !pos < n do
        if src.[!pos] = '\\' && !pos + 1 < n then begin
          Buffer.add_char buf src.[!pos + 1];
          pos := !pos + 2
        end
        else if src.[!pos] = '"' then begin
          closed := true;
          incr pos
        end
        else begin
          Buffer.add_char buf src.[!pos];
          incr pos
        end
      done;
      if not !closed then fail "unterminated string";
      tokens := Str_const (Buffer.contents buf) :: !tokens
    end
    else begin
      let matched =
        List.find_opt
          (fun p ->
            let l = String.length p in
            !pos + l <= n && String.sub src !pos l = p)
          punct_table
      in
      match matched with
      | Some p ->
          tokens := Punct p :: !tokens;
          pos := !pos + String.length p
      | None -> fail (Printf.sprintf "unexpected character %C" c)
    end
  done;
  List.rev !tokens

let token_to_string = function
  | Kw s -> s
  | Ident s -> s
  | Int_const n -> string_of_int n
  | Float_const f -> Printf.sprintf "%g" f
  | Str_const s -> Printf.sprintf "%S" s
  | Punct s -> s

module Vocab = struct
  (* Layout: 0 = padding; then keywords; then punctuation; then known
     library functions; then literal buckets; then identifier hash
     buckets. *)
  let known_calls =
    [
      "malloc"; "free"; "printf"; "memcpy"; "memset"; "strcpy"; "strlen"; "exit";
      "pthread_create"; "pthread_join"; "open"; "close"; "read"; "write";
    ]

  type t = {
    kw_base : int;
    punct_base : int;
    call_base : int;
    lit_base : int;
    ident_base : int;
    ident_buckets : int;
    total : int;
  }

  let n_lit_buckets = 8

  let create ~ident_buckets =
    if ident_buckets < 1 then invalid_arg "Vocab.create: need >= 1 identifier bucket";
    let kw_base = 1 in
    let punct_base = kw_base + List.length keywords in
    let call_base = punct_base + List.length punct_table in
    let lit_base = call_base + List.length known_calls in
    let ident_base = lit_base + n_lit_buckets in
    {
      kw_base;
      punct_base;
      call_base;
      lit_base;
      ident_base;
      ident_buckets;
      total = ident_base + ident_buckets;
    }

  let size t = t.total

  let index_of list x =
    let rec go i = function
      | [] -> None
      | y :: rest -> if String.equal x y then Some i else go (i + 1) rest
    in
    go 0 list

  (* Deterministic string hash (FNV-1a) so vocab ids are stable across
     runs, unlike Hashtbl.hash which may vary between OCaml versions. *)
  let fnv s =
    let h = ref 0x811c9dc5 in
    String.iter (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0x3fffffff) s;
    !h

  let id_of t = function
    | Kw s -> (
        match index_of keywords s with
        | Some i -> t.kw_base + i
        | None -> t.ident_base (* unreachable for tokens from [tokenize] *))
    | Punct s -> (
        match index_of punct_table s with
        | Some i -> t.punct_base + i
        | None -> t.ident_base)
    | Ident s -> (
        match index_of known_calls s with
        | Some i -> t.call_base + i
        | None -> t.ident_base + (fnv s mod t.ident_buckets))
    | Int_const n -> t.lit_base + (abs n mod (n_lit_buckets / 2))
    | Float_const f ->
        t.lit_base + (n_lit_buckets / 2) + (abs (int_of_float f) mod (n_lit_buckets / 2))
    | Str_const s -> t.lit_base + (fnv s mod (n_lit_buckets / 2))

  let encode t tokens = Array.of_list (List.map (id_of t) tokens)
end
