(** Code feature extraction: turns programs into the numeric vectors
    classical models consume (the paper's "summarize the input programs
    into numerical values like the number of instructions"). *)

open Prom_linalg

(** [token_histogram ~vocab tokens] is the normalized frequency of each
    vocabulary id in the token stream. *)
val token_histogram : vocab:Lexer.Vocab.t -> Lexer.token list -> Vec.t

(** [program_features p] combines {!Cast.stats_of} with call-pattern
    counts (allocation/free/printf/thread calls) into a fixed-width
    vector — the tabular representation of a program for MLP/GBC-style
    models. *)
val program_features : Cast.program -> Vec.t

val program_feature_dim : int

(** [program_tokens p] lexes the pretty-printed program. *)
val program_tokens : Cast.program -> Lexer.token list
