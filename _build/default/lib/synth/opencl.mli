(** Synthetic OpenCL kernels and analytic device performance models —
    the substrate of case studies C1 (thread coarsening) and C3
    (heterogeneous mapping). Kernels are drawn per benchmark suite with
    suite-specific characteristic distributions; holding a suite out of
    training reproduces the paper's drift protocol. The performance
    models are simple roofline-style analytic functions, so oracle
    labels (best coarsening factor; faster device) are exact. *)

open Prom_linalg

(** Static characteristics of a kernel. *)
type kernel = {
  suite : string;
  kname : string;
  comp_intensity : float;  (** arithmetic ops per work-item *)
  mem_intensity : float;  (** global memory accesses per work-item *)
  branch_divergence : float;  (** 0..1 *)
  local_mem : float;  (** local-memory pressure, 0..1 *)
  regs_per_thread : float;
  work_items : int;
  coalesced : float;  (** memory coalescing quality, 0..1 *)
  transfer_bytes : float;  (** host-device transfer volume *)
}

(** The benchmark suites kernels are drawn from (7, as in the DeepTune
    dataset). Each has its own parameter distributions. *)
val suites : string list

(** [sample_kernel rng ~suite] draws a kernel from the suite's
    distribution. Raises [Invalid_argument] for unknown suites. *)
val sample_kernel : Rng.t -> suite:string -> kernel

(** [feature_vector k] is the numeric representation models consume
    (the paper's "number of instructions"-style summary features). *)
val feature_vector : kernel -> Vec.t

(** [kernel_to_ast rng k] renders the descriptor as synthetic C-like
    kernel source whose statement mix mirrors the descriptor (arithmetic
    statements scale with compute intensity, array accesses with memory
    intensity, branches with divergence) — the raw-code view DeepTune-
    style sequence models consume. *)
val kernel_to_ast : Rng.t -> kernel -> Cast.program

(** A GPU model for thread coarsening. *)
type gpu = {
  gpu_name : string;
  compute_throughput : float;
  mem_bandwidth : float;
  sched_overhead : float;
  reg_budget : float;
  spill_penalty : float;
}

(** The four GPU platforms of the Magni et al. dataset, loosely. *)
val gpus : gpu list

val coarsening_factors : int array
(** [| 1; 2; 4; 8; 16; 32 |] *)

(** [coarsened_runtime gpu k cf] is the modeled runtime of [k] on [gpu]
    with coarsening factor [cf]: coarsening amortizes scheduling
    overhead and improves ILP until register pressure triggers spills
    and occupancy collapses. *)
val coarsened_runtime : gpu -> kernel -> int -> float

(** [best_coarsening gpu k] is the oracle [(factor, runtime)]. *)
val best_coarsening : gpu -> kernel -> int * float

(** CPU/GPU mapping (C3): modeled runtimes on a host CPU and a
    discrete GPU including transfer cost. *)
val cpu_runtime : kernel -> float

val gpu_runtime : gpu -> kernel -> float

(** [best_device gpu k] is [0] for CPU, [1] for GPU — the C3 oracle
    label. *)
val best_device : gpu -> kernel -> int
