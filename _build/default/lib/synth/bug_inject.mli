(** Injection of the top-8 CWE vulnerability patterns (paper Sec. 6.4)
    into benign programs. The [era] controls how indirect the pattern
    is, reproducing the paper's motivating example (Fig. 1): a 2012
    double-free frees the same pointer twice in one function; a 2023
    double-free reaches the second [free] through a helper invoked from
    a thread loop. *)

open Prom_linalg

type cwe =
  | Double_free  (** CWE-415 *)
  | Use_after_free  (** CWE-416 *)
  | Buffer_overflow  (** CWE-787 *)
  | Integer_overflow  (** CWE-190 *)
  | Null_deref  (** CWE-476 *)
  | Format_string  (** CWE-134 *)
  | Uninitialized  (** CWE-457 *)
  | Memory_leak  (** CWE-401 *)

val all : cwe list

(** [label c] is the class index in [0..7], stable across runs. *)
val label : cwe -> int

val of_label : int -> cwe
val name : cwe -> string

(** [inject rng ~era cwe program] returns [program] extended with a
    function (or functions) exhibiting the vulnerability, wired into
    [main]. *)
val inject : Rng.t -> era:int -> cwe -> Cast.program -> Cast.program

(** [add_decoys rng ~era ~count program] attaches [count] benign helper
    functions (paired malloc/free, literal printf, bounded array walks)
    without any vulnerability — used to build negative samples whose
    token vocabulary matches the vulnerable ones, so a detector must
    recognize the {i pattern}, not the API surface. *)
val add_decoys : Rng.t -> era:int -> count:int -> Cast.program -> Cast.program
