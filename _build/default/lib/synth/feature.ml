let token_histogram ~vocab tokens =
  let h = Array.make (Lexer.Vocab.size vocab) 0.0 in
  List.iter (fun t -> h.(Lexer.Vocab.id_of vocab t) <- h.(Lexer.Vocab.id_of vocab t) +. 1.0) tokens;
  let total = float_of_int (Stdlib.max 1 (List.length tokens)) in
  Array.map (fun c -> c /. total) h

let count_calls calls name =
  float_of_int (List.length (List.filter (String.equal name) calls))

let program_feature_dim = 14

let program_features p =
  let s = Cast.stats_of p in
  let calls = Cast.calls_of p in
  let fl = float_of_int in
  [|
    fl s.Cast.n_functions;
    log (1.0 +. fl s.Cast.n_statements);
    fl s.Cast.n_calls;
    fl s.Cast.n_loops;
    fl s.Cast.n_branches;
    fl s.Cast.n_decls;
    fl s.Cast.n_derefs;
    fl s.Cast.max_depth;
    count_calls calls "malloc";
    count_calls calls "free";
    count_calls calls "printf";
    count_calls calls "pthread_create";
    count_calls calls "free" -. count_calls calls "malloc";
    fl s.Cast.n_statements /. fl (Stdlib.max 1 s.Cast.n_functions);
  |]

let program_tokens p = Lexer.tokenize (Cast.to_string p)
