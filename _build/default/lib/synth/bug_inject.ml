open Prom_linalg
open Cast

type cwe =
  | Double_free
  | Use_after_free
  | Buffer_overflow
  | Integer_overflow
  | Null_deref
  | Format_string
  | Uninitialized
  | Memory_leak

let all =
  [
    Double_free; Use_after_free; Buffer_overflow; Integer_overflow; Null_deref;
    Format_string; Uninitialized; Memory_leak;
  ]

let label = function
  | Double_free -> 0
  | Use_after_free -> 1
  | Buffer_overflow -> 2
  | Integer_overflow -> 3
  | Null_deref -> 4
  | Format_string -> 5
  | Uninitialized -> 6
  | Memory_leak -> 7

let of_label = function
  | 0 -> Double_free
  | 1 -> Use_after_free
  | 2 -> Buffer_overflow
  | 3 -> Integer_overflow
  | 4 -> Null_deref
  | 5 -> Format_string
  | 6 -> Uninitialized
  | 7 -> Memory_leak
  | n -> invalid_arg (Printf.sprintf "Bug_inject.of_label: %d" n)

let name = function
  | Double_free -> "CWE-415-double-free"
  | Use_after_free -> "CWE-416-use-after-free"
  | Buffer_overflow -> "CWE-787-buffer-overflow"
  | Integer_overflow -> "CWE-190-integer-overflow"
  | Null_deref -> "CWE-476-null-deref"
  | Format_string -> "CWE-134-format-string"
  | Uninitialized -> "CWE-457-uninitialized"
  | Memory_leak -> "CWE-401-memory-leak"

let malloc n = Call ("malloc", [ n ])
let free p = Expr_stmt (Call ("free", [ Var p ]))

(* Late-era patterns route the dangerous operation through a helper,
   and the latest ones additionally fire the helper from a thread
   creation loop, as in CVE-2023-27537 (paper Fig. 1c). *)
let era_level era = if era >= 2021 then 2 else if era >= 2017 then 1 else 0

let wrap_threaded rng helper_name =
  let i = Generator.fresh_ident rng ~long:false "i" in
  For
    {
      init = Decl (Int, i, Some (Int_lit 0));
      cond = Binop (Lt, Var i, Int_lit (2 + Rng.int rng 8));
      step = Assign (Var i, Binop (Add, Var i, Int_lit 1));
      body = [ Expr_stmt (Call ("pthread_create", [ Var helper_name ])) ];
    }

(* Each pattern returns extra functions plus statements for main. *)
let pattern rng ~era cwe =
  let long = era >= 2018 in
  let level = era_level era in
  let v = Generator.fresh_ident rng ~long "buf" in
  match cwe with
  | Double_free -> (
      match level with
      | 0 ->
          ( [],
            [
              Decl (Ptr Char, v, Some (malloc (Int_lit 64)));
              free v;
              Expr_stmt (Call ("printf", [ Str_lit "done" ]));
              free v;
            ] )
      | 1 ->
          let cleanup = Generator.fresh_ident rng ~long "cleanup" in
          ( [
              {
                fname = cleanup;
                ret = Void;
                params = [ (Ptr Char, "ptr") ];
                body = [ free "ptr" ];
              };
            ],
            [
              Decl (Ptr Char, v, Some (malloc (Int_lit 64)));
              Expr_stmt (Call (cleanup, [ Var v ]));
              Expr_stmt (Call (cleanup, [ Var v ]));
            ] )
      | _ ->
          let cleanup = Generator.fresh_ident rng ~long "hsts_free" in
          ( [
              {
                fname = cleanup;
                ret = Void;
                params = [ (Ptr Char, "ptr") ];
                body =
                  [ If (Binop (Ne, Var "ptr", Int_lit 0), [ free "ptr" ], []) ];
              };
            ],
            [
              Decl (Ptr Char, v, Some (malloc (Int_lit 64)));
              Expr_stmt (Call (cleanup, [ Var v ]));
              wrap_threaded rng cleanup;
            ] ))
  | Use_after_free ->
      let use = Assign (Unop (Deref, Var v), Int_lit (Rng.int rng 9)) in
      if level = 0 then
        ( [],
          [ Decl (Ptr Char, v, Some (malloc (Int_lit 32))); free v; use ] )
      else
        let release = Generator.fresh_ident rng ~long "release" in
        ( [
            {
              fname = release;
              ret = Void;
              params = [ (Ptr Char, "ptr") ];
              body = [ free "ptr" ];
            };
          ],
          [
            Decl (Ptr Char, v, Some (malloc (Int_lit 32)));
            Expr_stmt (Call (release, [ Var v ]));
            use;
          ] )
  | Buffer_overflow ->
      let size = 8 + Rng.int rng 56 in
      let i = Generator.fresh_ident rng ~long:false "i" in
      ( [],
        [
          Array_decl (Char, v, size);
          For
            {
              init = Decl (Int, i, Some (Int_lit 0));
              cond = Binop (Le, Var i, Int_lit size);
              (* <= : off-by-one *)
              step = Assign (Var i, Binop (Add, Var i, Int_lit 1));
              body = [ Assign (Index (Var v, Var i), Int_lit 0) ];
            };
        ] )
  | Integer_overflow ->
      let a = Generator.fresh_ident rng ~long "count" in
      ( [],
        [
          Decl (Int, a, Some (Int_lit (1000000 + Rng.int rng 1000000)));
          Decl (Int, v, Some (Binop (Mul, Var a, Var a)));
          Expr_stmt (Call ("printf", [ Str_lit "%d"; Var v ]));
        ] )
  | Null_deref ->
      if level = 0 then
        ( [],
          [
            Decl (Ptr Char, v, Some (Int_lit 0));
            Assign (Unop (Deref, Var v), Int_lit 1);
          ] )
      else
        ( [],
          [
            Decl (Ptr Char, v, Some (malloc (Int_lit 4096)));
            (* missing NULL check before use *)
            Assign (Unop (Deref, Var v), Int_lit 1);
            free v;
          ] )
  | Format_string ->
      let input = Generator.fresh_ident rng ~long "input" in
      ( [],
        [
          Decl (Ptr Char, input, Some (Call ("read_line", [])));
          Expr_stmt (Call ("printf", [ Var input ]));
        ] )
  | Uninitialized ->
      ( [],
        [
          Decl (Int, v, None);
          Expr_stmt (Call ("printf", [ Str_lit "%d"; Var v ]));
        ] )
  | Memory_leak ->
      let cond = Binop (Gt, Int_lit (Rng.int rng 10), Int_lit 5) in
      ( [],
        [
          Decl (Ptr Char, v, Some (malloc (Int_lit 256)));
          If (cond, [ Return (Some (Int_lit 1)) ], []);
          (* leak on the early-return path *)
          free v;
        ] )

(* Late-era programs contain benign decoys whose token signatures mimic
   other vulnerability classes (correct malloc/free pairs, literal
   printf formats, bounded array loops), so the class signal stops being
   a bag-of-tokens give-away and becomes structural - the concept shift
   of paper Fig. 1. *)
let decoy rng ~long idx =
  let v = Generator.fresh_ident rng ~long "dec" in
  let body =
    match idx mod 3 with
    | 0 ->
        (* well-paired allocation *)
        [ Decl (Ptr Char, v, Some (malloc (Int_lit 128))); free v ]
    | 1 ->
        (* safe printf with literal format *)
        [
          Decl (Int, v, Some (Int_lit (Rng.int rng 100)));
          Expr_stmt (Call ("printf", [ Str_lit "%d"; Var v ]));
        ]
    | _ ->
        (* bounded array walk *)
        let i = Generator.fresh_ident rng ~long:false "i" in
        [
          Array_decl (Char, v, 32);
          For
            {
              init = Decl (Int, i, Some (Int_lit 0));
              cond = Binop (Lt, Var i, Int_lit 31);
              step = Assign (Var i, Binop (Add, Var i, Int_lit 1));
              body = [ Assign (Index (Var v, Var i), Int_lit 0) ];
            };
        ]
  in
  {
    fname = Generator.fresh_ident rng ~long ("helper" ^ string_of_int idx);
    ret = Void;
    params = [];
    body;
  }

let inject rng ~era cwe program =
  let extra_funcs, stmts = pattern rng ~era cwe in
  let n_decoys = if era >= 2021 then 3 else if era >= 2018 then 1 else 0 in
  let decoys = List.init n_decoys (decoy rng ~long:(era >= 2018)) in
  let vuln_name =
    if era >= 2018 then Printf.sprintf "handle_request_%d" (Rng.int rng 1000)
    else Printf.sprintf "g%d" (Rng.int rng 1000)
  in
  let vuln_func =
    { fname = vuln_name; ret = Int; params = []; body = stmts @ [ Return (Some (Int_lit 0)) ] }
  in
  let patch_main f =
    if f.fname = "main" then
      { f with body = Expr_stmt (Call (vuln_name, [])) :: f.body }
    else f
  in
  (* Decoys come after the vulnerable code so they share the sequence
     window without hiding the pattern entirely. *)
  {
    program with
    functions =
      extra_funcs @ [ vuln_func ] @ decoys @ List.map patch_main program.functions;
  }

let add_decoys rng ~era ~count program =
  let decoys = List.init count (fun i -> decoy rng ~long:(era >= 2018) (Rng.int rng 3 + i)) in
  { program with functions = decoys @ program.functions }
