(** A schedule-search engine in the style of TVM's evolutionary tuner:
    candidate schedules are proposed by mutation, ranked by a learned
    cost model, and only the most promising few are "measured" on the
    (synthetic) hardware. The quality of the search — the true
    throughput of the best measured schedule — is exactly what the cost
    model's deployment accuracy determines, which is how case study C5
    evaluates drift (Table 3). *)

open Prom_linalg
open Prom_synth

type result = {
  best_schedule : Schedule.schedule;
  best_true : float;  (** true throughput of the best measured candidate *)
  measurements : int;  (** candidates actually profiled *)
}

(** [search ?rounds ?pop_size ?top_k rng workload ~cost ~on_measure ()]
    runs the evolutionary loop ([top_k] defaults to 1: only the model's
    single best proposal is measured per round, so search quality tracks
    the cost model's deployment accuracy). [cost] is the learned model's
    throughput estimate (higher = better); [on_measure] observes every
    hardware measurement, letting callers build feedback loops. *)
val search :
  ?rounds:int ->
  ?pop_size:int ->
  ?top_k:int ->
  Rng.t ->
  Schedule.workload ->
  cost:(Schedule.schedule -> float) ->
  on_measure:(Schedule.schedule -> float -> unit) ->
  unit ->
  result
