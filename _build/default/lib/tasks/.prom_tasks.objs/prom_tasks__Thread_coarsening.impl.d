lib/tasks/thread_coarsening.ml: Array Case_study Encoders Fun Gradient_boosting Hashtbl List Mlp Opencl Prom_linalg Prom_ml Prom_nn Prom_synth Rng Seq_model Stdlib
