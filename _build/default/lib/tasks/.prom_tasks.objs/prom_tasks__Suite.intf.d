lib/tasks/suite.mli: Case_study Config Detection_metrics Dnn_codegen Format Prom
