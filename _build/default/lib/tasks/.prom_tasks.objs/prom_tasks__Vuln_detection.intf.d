lib/tasks/vuln_detection.mli: Case_study Cast Prom_nn Prom_synth
