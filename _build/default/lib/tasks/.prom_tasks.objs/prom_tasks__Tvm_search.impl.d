lib/tasks/tvm_search.ml: Array Prom_synth Schedule Stdlib
