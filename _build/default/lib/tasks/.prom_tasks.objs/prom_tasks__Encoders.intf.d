lib/tasks/encoders.mli: Encoding Model Prom_linalg Prom_ml Prom_nn Prom_synth Vec
