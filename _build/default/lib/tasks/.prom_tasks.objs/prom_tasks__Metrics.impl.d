lib/tasks/metrics.ml: Array Format Prom_linalg Stats Stdlib String
