lib/tasks/loop_vectorization.mli: Case_study Loops Prom_synth
