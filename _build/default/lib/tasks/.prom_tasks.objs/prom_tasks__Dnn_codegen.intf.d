lib/tasks/dnn_codegen.mli: Assessment Config Detection_metrics Format Prom Prom_synth Schedule
