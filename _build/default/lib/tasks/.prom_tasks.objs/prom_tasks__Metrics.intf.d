lib/tasks/metrics.mli: Format
