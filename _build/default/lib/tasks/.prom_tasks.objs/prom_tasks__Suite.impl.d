lib/tasks/suite.ml: Case_study Config Detection_metrics Dnn_codegen Format Hetero_mapping List Loop_vectorization Prom Thread_coarsening Vuln_detection
