lib/tasks/loop_vectorization.ml: Array Case_study Encoders Fun Hashtbl List Loops Mlp Prom_linalg Prom_ml Prom_nn Prom_synth Rng Seq_model Svm
