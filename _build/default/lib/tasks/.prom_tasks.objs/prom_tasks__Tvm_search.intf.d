lib/tasks/tvm_search.mli: Prom_linalg Prom_synth Rng Schedule
