lib/tasks/hetero_mapping.ml: Array Case_study Encoders Encoding Fun Gnn Gradient_boosting Hashtbl List Opencl Prom_linalg Prom_ml Prom_nn Prom_synth Rng Seq_model Stdlib
