lib/tasks/encoders.ml: Array Encoding Feature Fun Lexer List Nn_model Prom_nn Prom_synth Stdlib
