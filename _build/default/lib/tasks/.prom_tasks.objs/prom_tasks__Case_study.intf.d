lib/tasks/case_study.mli: Assessment Config Detection_metrics Format Model Prom Prom_linalg Prom_ml Vec
