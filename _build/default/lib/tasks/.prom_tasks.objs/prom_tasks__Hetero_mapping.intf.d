lib/tasks/hetero_mapping.mli: Case_study Opencl Prom_synth
