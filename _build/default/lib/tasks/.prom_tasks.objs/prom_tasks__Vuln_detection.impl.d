lib/tasks/vuln_detection.ml: Array Bug_inject Case_study Cast Encoders Generator List Prom_linalg Prom_nn Prom_synth Rng Seq_model
