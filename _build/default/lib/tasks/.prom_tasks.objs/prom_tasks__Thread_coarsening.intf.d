lib/tasks/thread_coarsening.mli: Case_study Opencl Prom_synth
