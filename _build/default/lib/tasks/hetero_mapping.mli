(** Case study C3: the binary CPU-vs-GPU mapping decision for OpenCL
    kernels (paper Sec. 6.3). Drift: train on six benchmark suites,
    deploy on the held-out seventh. *)

open Prom_synth

val scenario :
  ?kernels_per_suite:int -> seed:int -> unit -> Opencl.kernel Case_study.scenario

(** DeepTune (LSTM), ProGraML (GNN over synthesized dataflow graphs),
    IR2Vec (gradient boosting). *)
val models : Opencl.kernel Case_study.model_spec list
