(** Generic scaffolding shared by the classification case studies
    (C1-C4): the drift scenario data, the per-model encoding, and the
    experiment runner that produces every number the paper's figures
    report for one (case study, model) pair. *)

open Prom_linalg
open Prom_ml
open Prom

(** A drift scenario over workloads of type ['w]. [train_w] is the
    design-time pool (split internally into training and calibration);
    [id_w] is an in-distribution validation set (design-time
    performance); [drift_w] is the deployment set drawn from a shifted
    distribution. [perf w label] is the performance-to-oracle ratio in
    [0, 1] of acting on [label] for workload [w] (for pure
    classification tasks it is 1 on the correct label and 0
    otherwise). *)
type 'w scenario = {
  cs_name : string;
  n_classes : int;
  train_w : 'w array;
  train_y : int array;
  id_w : 'w array;
  id_y : int array;
  drift_w : 'w array;
  drift_y : int array;
  perf : 'w -> int -> float;
}

(** How one underlying model consumes workloads: [encode] produces the
    model input vector, [trainer] fits the model, and [cp_feature_of]
    chooses the feature space PROM measures distances in (a neural
    model's embedding, or the identity for tabular inputs). *)
type 'w model_spec = {
  spec_name : string;
  encode : 'w -> Vec.t;
  trainer : Model.classifier_trainer;
  cp_feature_of : Model.classifier -> Vec.t -> Vec.t;
  scale_features : bool;
      (** standardize encoded features before training and detection —
          true for tabular encodings, false for packed token sequences
          and graphs, whose encodings are structural *)
}

(** Everything the figures need for one (case study, model) pair. *)
type result = {
  case : string;
  model_name : string;
  design_perf : float array;  (** per-sample perf on the id set (Fig. 7) *)
  deploy_perf : float array;  (** per-sample perf on the drift set (Fig. 7) *)
  prom_perf : float array;
      (** drift-set perf after incremental learning (Fig. 9) *)
  detection : Detection_metrics.t;  (** PROM committee (Fig. 8) *)
  per_function : (string * Detection_metrics.t) list;  (** Fig. 11 *)
  baseline_metrics : (string * Detection_metrics.t) list;  (** Fig. 10 *)
  coverage : Assessment.report;  (** Fig. 13d *)
  flagged_fraction : float;
  relabeled : int;
  train_time : float;
  retrain_time : float;
  detect_time : float;  (** mean seconds per drift-detection call *)
}

(** [run ?config ?budget_fraction ~seed scenario spec] executes the full
    protocol: split, train, measure design and deployment performance,
    detect drift, compare against single functions and baselines,
    assess coverage, and run one incremental-learning round. *)
val run :
  ?config:Config.t ->
  ?budget_fraction:float ->
  seed:int ->
  'w scenario ->
  'w model_spec ->
  result

(** [summarize results] averages a result list into the Table 2 row:
    [(design, deploy, prom, detection-average)]. *)
val summarize : result list -> float * float * float * Detection_metrics.t

val pp_result : Format.formatter -> result -> unit
