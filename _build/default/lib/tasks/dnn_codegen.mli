(** Case study C5: a regression cost model for DNN code generation
    (paper Sec. 6.5, Table 3). A TLP-style attention regressor is
    trained on (workload, schedule) samples from BERT-base and deployed
    on the other BERT variants, both for raw prediction accuracy (drift
    detection) and to drive the {!Tvm_search} engine (perf-to-oracle).
    PROM-assisted search profiles a small budget of flagged candidates
    and retrains the cost model online. *)

open Prom
open Prom_synth

(** Per-network outcome of Table 3. *)
type network_row = {
  network : Schedule.network;
  native_ratio : float;  (** search perf-to-oracle with the stale model *)
  prom_ratio : float option;
      (** with PROM-assisted online retraining; [None] for the
          in-distribution network *)
  detection : Detection_metrics.t option;
      (** drift detection on prediction deviations; [None] in
          distribution *)
}

type result = {
  rows : network_row list;
  coverage : Assessment.report;
  design_mae : float;  (** cost-model log-space MAE on held-out base data *)
  n_clusters : int;  (** chosen by the gap statistic *)
}

(** [run ?config ?train_samples ?test_samples ?search_workloads ~seed ()]
    executes the full C5 protocol. Sizes default to a laptop-scale
    reduction of the paper's setup. *)
val run :
  ?config:Config.t ->
  ?train_samples:int ->
  ?test_samples:int ->
  ?search_workloads:int ->
  seed:int ->
  unit ->
  result

val pp_result : Format.formatter -> result -> unit
