(** Case study C4: classifying the vulnerability type (top-8 CWE) of a
    C function (paper Sec. 6.4). Drift: train on samples from
    2013-2020, deploy on 2021-2023, where late-era bugs hide behind
    helper indirection and thread loops (paper Fig. 1). *)

open Prom_synth

type sample = { program : Cast.program; era : int; truth : int }

val scenario : ?per_era:int -> seed:int -> unit -> sample Case_study.scenario

(** VulDeePecker (LSTM), CodeXGLUE (attention pooler), LineVul (GRU). *)
val models : sample Case_study.model_spec list

(** The shared token-sequence spec of the three models (exposed for the
    benchmark harness and tests). *)
val spec : Prom_nn.Encoding.Seq.spec
