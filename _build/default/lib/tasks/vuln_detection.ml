open Prom_linalg
open Prom_nn
open Prom_synth

type sample = { program : Cast.program; era : int; truth : int }

let n_classes = List.length Bug_inject.all

let make_sample rng era cwe =
  let style = Generator.style_of_era rng era in
  let base = Generator.generate rng style in
  {
    program = Bug_inject.inject rng ~era cwe base;
    era;
    truth = Bug_inject.label cwe;
  }

let samples_for rng ~eras ~per_era =
  Array.concat
    (List.map
       (fun era ->
         Array.init per_era (fun i ->
             make_sample rng era (Bug_inject.of_label (i mod n_classes))))
       eras)

(* Pure classification: performance is 1 on the correct class, 0
   otherwise, so mean performance is accuracy (paper Fig. 7d). *)
let perf w label = if label = w.truth then 1.0 else 0.0

let scenario ?(per_era = 48) ~seed () =
  let rng = Rng.create seed in
  let train_eras = [ 2013; 2015; 2017; 2019; 2020 ] in
  let drift_eras = [ 2021; 2022; 2023 ] in
  let train_all = samples_for rng ~eras:train_eras ~per_era in
  Rng.shuffle rng train_all;
  let n_id = Array.length train_all / 5 in
  let id_w = Array.sub train_all 0 n_id in
  let train_w = Array.sub train_all n_id (Array.length train_all - n_id) in
  let drift_w = samples_for rng ~eras:drift_eras ~per_era in
  let labels = Array.map (fun s -> s.truth) in
  {
    Case_study.cs_name = "C4-vulnerability-detection";
    n_classes;
    train_w;
    train_y = labels train_w;
    id_w;
    id_y = labels id_w;
    drift_w;
    drift_y = labels drift_w;
    perf;
  }

let spec = Encoders.seq_spec ~max_len:64 ~extra:0

let sequence s = Encoders.pack_program spec ~prefix:[] s.program

let seq_model arch epochs =
  Seq_model.trainer
    ~params:
      {
        (Seq_model.default_params spec) with
        Seq_model.arch;
        epochs;
        hidden = 16;
        learning_rate = 0.005;
      }

let models =
  [
    {
      Case_study.spec_name = "VulDeePecker-LSTM";
      encode = sequence;
      scale_features = false;
      trainer = seq_model Seq_model.Lstm 25;
      cp_feature_of = (fun _ -> Encoders.seq_features spec);
    };
    {
      Case_study.spec_name = "CodeXGLUE-Attention";
      encode = sequence;
      scale_features = false;
      trainer = seq_model Seq_model.Attention 20;
      cp_feature_of = (fun _ -> Encoders.seq_features spec);
    };
    {
      Case_study.spec_name = "LineVul-GRU";
      encode = sequence;
      scale_features = false;
      trainer = seq_model Seq_model.Gru 25;
      cp_feature_of = (fun _ -> Encoders.seq_features spec);
    };
  ]
