open Prom_nn
open Prom_synth

let vocab = Lexer.Vocab.create ~ident_buckets:24

let seq_spec ~max_len ~extra =
  { Encoding.Seq.max_len; vocab = Lexer.Vocab.size vocab + extra }

let special_token ~extra i =
  if i < 0 || i >= extra then invalid_arg "Encoders.special_token: index out of range";
  Lexer.Vocab.size vocab + i

let pack_program spec ~prefix p =
  let tokens = Lexer.Vocab.encode vocab (Feature.program_tokens p) in
  let all = Array.append (Array.of_list prefix) tokens in
  Encoding.Seq.encode spec all

let nn_feature_of model =
  match Nn_model.embedding_of model with Some f -> f | None -> Fun.id

let nn_reg_feature_of model =
  match Nn_model.embedding_of_regressor model with Some f -> f | None -> Fun.id

let seq_features spec packed =
  let tokens = Encoding.Seq.decode spec packed in
  let hist = Array.make spec.Encoding.Seq.vocab 0.0 in
  let n = float_of_int (Stdlib.max 1 (Array.length tokens)) in
  Array.iter (fun t -> hist.(t) <- hist.(t) +. (1.0 /. n)) tokens;
  Array.append [| float_of_int (Array.length tokens) |] hist

let graph_features spec packed =
  let g = Encoding.Graph.decode spec packed in
  let nodes = g.Encoding.Graph.nodes in
  let n = Array.length nodes in
  let mean = Array.make spec.Encoding.Graph.feat_dim 0.0 in
  Array.iter
    (fun f -> Array.iteri (fun j v -> mean.(j) <- mean.(j) +. (v /. float_of_int (Stdlib.max 1 n))) f)
    nodes;
  Array.append
    [| float_of_int n; float_of_int (List.length g.Encoding.Graph.edges) |]
    mean
