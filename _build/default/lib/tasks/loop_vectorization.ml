open Prom_linalg
open Prom_ml
open Prom_nn
open Prom_synth

let n_classes = Array.length Loops.configs

let label_of l = Loops.config_label (fst (Loops.best_config l))

let perf l label =
  let _, best = Loops.best_config l in
  best /. Loops.runtime l (Loops.label_config label)

let scenario ?(loops_per_family = 45) ~seed () =
  let rng = Rng.create seed in
  let drift_families = [ "gather"; "scatter"; "stencil2d"; "cmplx-mul" ] in
  let train_families =
    List.filter (fun f -> not (List.mem f drift_families)) Loops.families
  in
  let sample fam count =
    Array.init count (fun _ -> Loops.sample_loop rng ~family:fam)
  in
  let train_all =
    Array.concat (List.map (fun f -> sample f loops_per_family) train_families)
  in
  Rng.shuffle rng train_all;
  let n_id = Array.length train_all / 5 in
  let id_w = Array.sub train_all 0 n_id in
  let train_w = Array.sub train_all n_id (Array.length train_all - n_id) in
  let drift_w =
    Array.concat (List.map (fun f -> sample f loops_per_family) drift_families)
  in
  {
    Case_study.cs_name = "C2-loop-vectorization";
    n_classes;
    train_w;
    train_y = Array.map label_of train_w;
    id_w;
    id_y = Array.map label_of id_w;
    drift_w;
    drift_y = Array.map label_of drift_w;
    perf;
  }

let spec = Encoders.seq_spec ~max_len:48 ~extra:0

let sequence l =
  let rng = Rng.create (Hashtbl.hash (l.Loops.family, l.Loops.trip_count, l.Loops.stride)) in
  Encoders.pack_program spec ~prefix:[] (Loops.loop_to_ast rng l)

let models =
  [
    {
      Case_study.spec_name = "Stock-SVM";
      encode = Loops.feature_vector;
      scale_features = true;
      trainer = Svm.trainer ~params:{ Svm.default_params with epochs = 40 } ();
      cp_feature_of = (fun _ -> Fun.id);
    };
    {
      Case_study.spec_name = "DeepTune-LSTM";
      encode = sequence;
      scale_features = false;
      trainer =
        Seq_model.trainer
          ~params:
            { (Seq_model.default_params spec) with Seq_model.arch = Lstm; epochs = 6 };
      cp_feature_of = (fun _ -> Encoders.seq_features spec);
    };
    {
      Case_study.spec_name = "Magni-MLP";
      encode = Loops.feature_vector;
      scale_features = true;
      trainer =
        Mlp.trainer
          ~params:{ Mlp.default_params with hidden = [ 32 ]; epochs = 150 }
          ();
      cp_feature_of = (fun _ -> Fun.id);
    };
  ]
