open Prom_linalg

type violin = {
  vmin : float;
  q1 : float;
  median : float;
  q3 : float;
  vmax : float;
  mean : float;
  n : int;
  widths : int array;
}

let violin_of samples =
  if Array.length samples = 0 then invalid_arg "Metrics.violin_of: empty sample set";
  let vmin, q1, median, q3, vmax = Stats.five_number_summary samples in
  {
    vmin;
    q1;
    median;
    q3;
    vmax;
    mean = Stats.mean samples;
    n = Array.length samples;
    widths = Stats.histogram samples ~bins:8;
  }

let pp_violin fmt v =
  let bar count =
    let peak = Array.fold_left Stdlib.max 1 v.widths in
    String.make (1 + (count * 10 / peak)) '#'
  in
  Format.fprintf fmt "n=%d mean=%.3f [min=%.3f q1=%.3f med=%.3f q3=%.3f max=%.3f]" v.n
    v.mean v.vmin v.q1 v.median v.q3 v.vmax;
  Format.fprintf fmt " width:";
  Array.iter (fun c -> Format.fprintf fmt "|%s" (bar c)) v.widths

let misprediction_threshold = 0.8
let mispredicted ~perf = perf < misprediction_threshold
