open Prom_linalg
open Prom_ml
open Prom_nn
open Prom_synth

(* The GPU side of the mapping decision is a fixed discrete device. *)
let device = List.nth Opencl.gpus 1

let label_of k = Opencl.best_device device k

let perf k label =
  let t_cpu = Opencl.cpu_runtime k and t_gpu = Opencl.gpu_runtime device k in
  let best = Stdlib.min t_cpu t_gpu in
  best /. (if label = 0 then t_cpu else t_gpu)

let scenario ?(kernels_per_suite = 70) ~seed () =
  let rng = Rng.create seed in
  let drift_suite = "polybench" in
  let train_suites = List.filter (fun s -> s <> drift_suite) Opencl.suites in
  let sample suite count =
    Array.init count (fun _ -> Opencl.sample_kernel rng ~suite)
  in
  let train_all =
    Array.concat (List.map (fun s -> sample s kernels_per_suite) train_suites)
  in
  Rng.shuffle rng train_all;
  let n_id = Array.length train_all / 5 in
  let id_w = Array.sub train_all 0 n_id in
  let train_w = Array.sub train_all n_id (Array.length train_all - n_id) in
  let drift_w = sample drift_suite kernels_per_suite in
  {
    Case_study.cs_name = "C3-heterogeneous-mapping";
    n_classes = 2;
    train_w;
    train_y = Array.map label_of train_w;
    id_w;
    id_y = Array.map label_of id_w;
    drift_w;
    drift_y = Array.map label_of drift_w;
    perf;
  }

(* DeepTune feeds auxiliary scalar inputs (work-group and data sizes)
   alongside the token sequence; we encode them as special prefix
   tokens: 8 buckets each for log work-items, coalescing and transfer
   volume. *)
let n_aux = 24
let seq_spec = Encoders.seq_spec ~max_len:96 ~extra:n_aux

let aux_tokens k =
  let bucket lo hi v =
    Stdlib.max 0 (Stdlib.min 7 (int_of_float ((v -. lo) /. (hi -. lo) *. 8.0)))
  in
  [
    Encoders.special_token ~extra:n_aux (bucket 8.0 26.0 (log (float_of_int k.Opencl.work_items) /. log 2.0));
    Encoders.special_token ~extra:n_aux (8 + bucket 0.0 1.0 k.Opencl.coalesced);
    Encoders.special_token ~extra:n_aux (16 + bucket 8.0 26.0 (log (1.0 +. k.Opencl.transfer_bytes) /. log 2.0));
  ]

let sequence k =
  let rng = Rng.create (Hashtbl.hash k.Opencl.kname) in
  Encoders.pack_program seq_spec ~prefix:(aux_tokens k) (Opencl.kernel_to_ast rng k)

(* ProGraML-style graphs: a synthetic dataflow graph whose node mix
   reflects the kernel's instruction mix. Node features are an op-type
   one-hot plus a magnitude. *)
let graph_spec = { Encoding.Graph.max_nodes = 16; feat_dim = 6 }

let graph_of k =
  let rng = Rng.create (Hashtbl.hash k.Opencl.kname) in
  let n_arith = 1 + Stdlib.min 4 (int_of_float (log (1.0 +. k.Opencl.comp_intensity))) in
  let n_mem = 1 + Stdlib.min 4 (int_of_float (log (1.0 +. k.Opencl.mem_intensity))) in
  let n_branch = Stdlib.min 2 (int_of_float (k.Opencl.branch_divergence *. 3.0)) in
  let node kind magnitude =
    let f = Array.make 6 0.0 in
    f.(kind) <- 1.0;
    f.(5) <- magnitude;
    f
  in
  let nodes =
    Array.concat
      [
        [| node 0 (log (float_of_int k.Opencl.work_items)) |] (* entry *);
        Array.init n_arith (fun _ -> node 1 (k.Opencl.comp_intensity /. 100.0));
        Array.init n_mem (fun _ -> node 2 k.Opencl.coalesced);
        Array.init n_branch (fun _ -> node 3 k.Opencl.branch_divergence);
        [| node 4 k.Opencl.local_mem |] (* exit *);
      ]
  in
  let n = Array.length nodes in
  (* A control-flow spine plus a few random dataflow edges. *)
  let spine = List.init (n - 1) (fun i -> (i, i + 1)) in
  let extra =
    List.init (n / 2) (fun _ ->
        let a = Rng.int rng n and b = Rng.int rng n in
        if a = b then (a, (b + 1) mod n) else (a, b))
  in
  Encoding.Graph.encode graph_spec { Encoding.Graph.nodes; edges = spine @ extra }

let models =
  [
    {
      Case_study.spec_name = "DeepTune-LSTM";
      encode = sequence;
      scale_features = false;
      trainer =
        Seq_model.trainer
          ~params:
            { (Seq_model.default_params seq_spec) with Seq_model.arch = Lstm; epochs = 10 };
      cp_feature_of = (fun _ -> Encoders.seq_features seq_spec);
    };
    {
      Case_study.spec_name = "ProGraML-GNN";
      encode = graph_of;
      scale_features = false;
      trainer = Gnn.trainer ~params:(Gnn.default_params graph_spec);
      cp_feature_of = (fun _ -> Encoders.graph_features graph_spec);
    };
    {
      Case_study.spec_name = "IR2Vec-GBC";
      encode = Opencl.feature_vector;
      scale_features = true;
      trainer = Gradient_boosting.trainer ();
      cp_feature_of = (fun _ -> Fun.id);
    };
  ]
