(** Case study C2: predicting the vectorization and interleave factors
    for vectorizable loops (paper Sec. 6.2). 35 classes — the (VF, IF)
    grid of {!Prom_synth.Loops.configs}. Drift: train on loops from 14
    benchmark families, deploy on the remaining 4. *)

open Prom_synth

val scenario : ?loops_per_family:int -> seed:int -> unit -> Loops.loop Case_study.scenario

(** K.Stock et al. (SVM), DeepTune (LSTM over loop tokens), Magni et
    al. (MLP). *)
val models : Loops.loop Case_study.model_spec list
