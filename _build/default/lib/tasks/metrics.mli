(** Task-level metrics: performance-to-oracle distributions and their
    text rendering (the numeric content of the paper's violin plots,
    Figs. 7 and 9). *)

(** The five-number summary plus mean and a coarse width histogram — a
    violin plot in numbers. *)
type violin = {
  vmin : float;
  q1 : float;
  median : float;
  q3 : float;
  vmax : float;
  mean : float;
  n : int;
  widths : int array;  (** sample counts across 8 equal-width bins *)
}

val violin_of : float array -> violin

(** [pp_violin fmt v] prints a one-line summary plus an ASCII width
    profile. *)
val pp_violin : Format.formatter -> violin -> unit

(** [misprediction_threshold] — a code-optimization prediction counts as
    mispredicted when its performance falls 20% or more below the
    oracle (paper Sec. 6.6). *)
val misprediction_threshold : float

(** [mispredicted ~perf] under the 20% rule. *)
val mispredicted : perf:float -> bool
