open Prom_linalg
open Prom_ml
open Prom_nn
open Prom_synth

type workload = { kernel : Opencl.kernel; gpu : Opencl.gpu }

let factor_index cf =
  let rec find i =
    if i >= Array.length Opencl.coarsening_factors then
      invalid_arg "Thread_coarsening: unknown factor"
    else if Opencl.coarsening_factors.(i) = cf then i
    else find (i + 1)
  in
  find 0

let n_classes = Array.length Opencl.coarsening_factors

let label_of w = factor_index (fst (Opencl.best_coarsening w.gpu w.kernel))

let perf w label =
  let _, best = Opencl.best_coarsening w.gpu w.kernel in
  let t = Opencl.coarsened_runtime w.gpu w.kernel Opencl.coarsening_factors.(label) in
  best /. t

let gpu_index gpu =
  let rec find i = function
    | [] -> invalid_arg "Thread_coarsening: unknown GPU"
    | g :: rest -> if g.Opencl.gpu_name = gpu.Opencl.gpu_name then i else find (i + 1) rest
  in
  find 0 Opencl.gpus

let sample_suite rng ~suite ~count =
  Array.init count (fun _ ->
      let kernel = Opencl.sample_kernel rng ~suite in
      let gpu = List.nth Opencl.gpus (Rng.int rng (List.length Opencl.gpus)) in
      { kernel; gpu })

let scenario ?(kernels_per_suite = 120) ~seed () =
  let rng = Rng.create seed in
  let train_suites = [ "amd-sdk"; "nvidia-sdk" ] in
  let drift_suite = "parboil" in
  let train_all =
    Array.concat
      (List.map (fun suite -> sample_suite rng ~suite ~count:kernels_per_suite) train_suites)
  in
  Rng.shuffle rng train_all;
  (* Hold out part of the in-distribution pool as the design-time
     validation set. *)
  let n_id = Array.length train_all / 5 in
  let id_w = Array.sub train_all 0 n_id in
  let train_w = Array.sub train_all n_id (Array.length train_all - n_id) in
  let drift_w = sample_suite rng ~suite:drift_suite ~count:kernels_per_suite in
  {
    Case_study.cs_name = "C1-thread-coarsening";
    n_classes;
    train_w;
    train_y = Array.map label_of train_w;
    id_w;
    id_y = Array.map label_of id_w;
    drift_w;
    drift_y = Array.map label_of drift_w;
    perf;
  }

(* Tabular encoding: kernel features plus a GPU one-hot. *)
let tabular w =
  let gpu_onehot =
    Array.init (List.length Opencl.gpus) (fun i ->
        if i = gpu_index w.gpu then 1.0 else 0.0)
  in
  Array.append (Opencl.feature_vector w.kernel) gpu_onehot

(* DeepTune-style encoding: kernel source tokens, prefixed by special
   tokens identifying the target GPU and DeepTune's auxiliary scalar
   inputs (work-item and transfer magnitudes, 8 buckets each). *)
let n_gpus = List.length Opencl.gpus
let n_extra = n_gpus + 16
let spec = Encoders.seq_spec ~max_len:96 ~extra:n_extra

let sequence w =
  (* The AST rendering is deterministic per kernel name. *)
  let rng = Rng.create (Hashtbl.hash w.kernel.Opencl.kname) in
  let ast = Opencl.kernel_to_ast rng w.kernel in
  let bucket lo hi v =
    Stdlib.max 0 (Stdlib.min 7 (int_of_float ((v -. lo) /. (hi -. lo) *. 8.0)))
  in
  let prefix =
    [
      Encoders.special_token ~extra:n_extra (gpu_index w.gpu);
      Encoders.special_token ~extra:n_extra
        (n_gpus + bucket 8.0 26.0 (log (float_of_int w.kernel.Opencl.work_items) /. log 2.0));
      Encoders.special_token ~extra:n_extra
        (n_gpus + 8 + bucket 0.0 1.0 w.kernel.Opencl.coalesced);
    ]
  in
  Encoders.pack_program spec ~prefix ast

let models =
  [
    {
      Case_study.spec_name = "Magni-MLP";
      encode = tabular;
      scale_features = true;
      trainer =
        Mlp.trainer
          ~params:{ Mlp.default_params with hidden = [ 24 ]; epochs = 120 }
          ();
      cp_feature_of = (fun _ -> Fun.id);
    };
    {
      Case_study.spec_name = "DeepTune-LSTM";
      encode = sequence;
      scale_features = false;
      trainer =
        Seq_model.trainer
          ~params:
            { (Seq_model.default_params spec) with Seq_model.arch = Lstm; epochs = 8 };
      cp_feature_of = (fun _ -> Encoders.seq_features spec);
    };
    {
      Case_study.spec_name = "IR2Vec-GBC";
      encode = tabular;
      scale_features = true;
      trainer = Gradient_boosting.trainer ();
      cp_feature_of = (fun _ -> Fun.id);
    };
  ]
