(** Case study C1: predicting the OpenCL thread-coarsening factor
    (paper Sec. 6.1). Workloads are (kernel, GPU) pairs; the label is
    the index of the best factor in {!Prom_synth.Opencl.coarsening_factors};
    performance is the runtime ratio to the oracle factor. Drift is
    induced by training on two benchmark suites and deploying on a
    third. *)

open Prom_synth

type workload = { kernel : Opencl.kernel; gpu : Opencl.gpu }

(** [scenario ?kernels_per_suite ~seed ()] builds the drift scenario:
    train on [amd-sdk] and [nvidia-sdk] kernels, deploy on [parboil]
    kernels, across all four GPUs. *)
val scenario : ?kernels_per_suite:int -> seed:int -> unit -> workload Case_study.scenario

(** The three underlying models of the paper: Magni et al. (MLP),
    DeepTune (LSTM over kernel tokens), IR2Vec (gradient boosting). *)
val models : workload Case_study.model_spec list
