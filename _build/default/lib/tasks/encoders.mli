(** Shared input encoders: token-sequence packing for the DeepTune /
    VulDeePecker-style sequence models and the CP feature-space choice
    for neural models. *)

open Prom_linalg
open Prom_ml
open Prom_nn

(** The shared code vocabulary (24 identifier buckets). *)
val vocab : Prom_synth.Lexer.Vocab.t

(** [seq_spec ~max_len ~extra] is a sequence spec whose vocabulary is
    the code vocabulary plus [extra] special context tokens (used to
    inject, e.g., the target GPU into the sequence). *)
val seq_spec : max_len:int -> extra:int -> Encoding.Seq.spec

(** [special_token ~extra i] is the id of the [i]th special token.
    Raises [Invalid_argument] when [i >= extra]. *)
val special_token : extra:int -> int -> int

(** [pack_program spec ~prefix p] tokenizes the program and packs
    [prefix @ tokens], truncating to the spec length. *)
val pack_program : Encoding.Seq.spec -> prefix:int list -> Prom_synth.Cast.program -> Vec.t

(** [nn_feature_of model] is the model's hidden embedding when it is a
    [prom_nn] network, the identity otherwise — the CP feature space
    rule of Sec. 4.1.1. *)
val nn_feature_of : Model.classifier -> Vec.t -> Vec.t

(** [seq_features spec packed] is a model-free feature extractor for
    packed token sequences: the normalized token-id histogram plus the
    sequence length. Token-distribution shift — new code patterns —
    moves these features directly, which the paper's summary-feature
    extractors ("number of instructions") are meant to capture. *)
val seq_features : Encoding.Seq.spec -> Vec.t -> Vec.t

(** [graph_features spec packed] aggregates a packed graph into node
    count, edge count and mean node features. *)
val graph_features : Encoding.Graph.spec -> Vec.t -> Vec.t

(** [nn_reg_feature_of model] likewise for regressors. *)
val nn_reg_feature_of : Model.regressor -> Vec.t -> Vec.t
