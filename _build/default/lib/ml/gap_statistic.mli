(** The gap statistic of Tibshirani et al. for choosing the number of
    clusters: compares the log within-cluster dispersion of k-means on
    the data against its expectation under a uniform reference
    distribution over the data's bounding box. PROM uses it to pick the
    cluster count that labels regression calibration sets
    (paper Sec. 5.1.2). *)

open Prom_linalg

type result = {
  best_k : int;
  gaps : (int * float) list;  (** gap value for every candidate [k] *)
}

(** [select rng xs ~k_min ~k_max ?n_refs ()] evaluates candidate cluster
    counts and returns the [k] with the largest gap. [n_refs] (default
    5) reference datasets are drawn per candidate. Raises
    [Invalid_argument] if the range is empty or exceeds the sample
    count. *)
val select :
  ?n_refs:int -> Rng.t -> Vec.t array -> k_min:int -> k_max:int -> result
