(** Gaussian naive Bayes classifier: per-class, per-feature normal
    likelihoods with class priors. Cheap, fully probabilistic, and a
    useful contrast model in tests. *)

val train : ?var_smoothing:float -> ?init:Model.classifier -> int Dataset.t -> Model.classifier
val trainer : ?var_smoothing:float -> unit -> Model.classifier_trainer
