open Prom_linalg

type params = {
  n_trees : int;
  tree : Decision_tree.split_params;
  bootstrap_ratio : float;
  seed : int;
}

let default_params =
  {
    n_trees = 25;
    tree =
      {
        Decision_tree.default_split_params with
        max_depth = 6;
        max_features = Some 4;
      };
    bootstrap_ratio = 0.8;
    seed = 17;
  }

let bootstrap rng (d : 'a Dataset.t) ratio =
  let n = Dataset.length d in
  let k = Stdlib.max 1 (int_of_float (ratio *. float_of_int n)) in
  Dataset.subset d (Array.init k (fun _ -> Rng.int rng n))

let train ?(params = default_params) ?init:_ (d : int Dataset.t) =
  if Dataset.length d = 0 then invalid_arg "Random_forest.train: empty dataset";
  let n_classes = Dataset.n_classes d in
  let rng = Rng.create params.seed in
  let trees =
    Array.init params.n_trees (fun i ->
        let sample = bootstrap rng d params.bootstrap_ratio in
        let tree_params = { params.tree with seed = params.tree.seed + i } in
        Decision_tree.fit_classification ~params:tree_params sample)
  in
  {
    Model.n_classes;
    predict_proba =
      (fun x ->
        let acc = Array.make n_classes 0.0 in
        Array.iter
          (fun t ->
            let h = Decision_tree.leaf_value t x in
            (* A bootstrap sample may miss the rarest classes, yielding a
               shorter histogram; align on the common prefix. *)
            Array.iteri
              (fun c p -> if c < n_classes then acc.(c) <- acc.(c) +. p)
              h)
          trees;
        Vec.scale (1.0 /. float_of_int params.n_trees) acc);
    name = "random-forest";
    state = Model.No_state;
  }

let trainer ?params () =
  {
    Model.train = (fun ?init d -> train ?params ?init d);
    trainer_name = "random-forest";
  }

let train_regressor ?(params = default_params) ?init:_ (d : float Dataset.t) =
  if Dataset.length d = 0 then invalid_arg "Random_forest.train_regressor: empty dataset";
  let rng = Rng.create params.seed in
  let trees =
    Array.init params.n_trees (fun i ->
        let sample = bootstrap rng d params.bootstrap_ratio in
        let tree_params = { params.tree with seed = params.tree.seed + i } in
        Decision_tree.fit_regression ~params:tree_params sample)
  in
  {
    Model.predict =
      (fun x ->
        let acc =
          Array.fold_left (fun acc t -> acc +. Decision_tree.leaf_value t x) 0.0 trees
        in
        acc /. float_of_int params.n_trees);
    name = "random-forest-reg";
    reg_state = Model.No_state;
  }
