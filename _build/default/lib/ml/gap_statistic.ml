open Prom_linalg

type result = { best_k : int; gaps : (int * float) list }

let bounding_box xs =
  let dim = Array.length xs.(0) in
  let lo = Array.copy xs.(0) and hi = Array.copy xs.(0) in
  Array.iter
    (fun x ->
      for j = 0 to dim - 1 do
        if x.(j) < lo.(j) then lo.(j) <- x.(j);
        if x.(j) > hi.(j) then hi.(j) <- x.(j)
      done)
    xs;
  (lo, hi)

let uniform_reference rng xs =
  let lo, hi = bounding_box xs in
  Array.map
    (fun x ->
      Array.mapi
        (fun j _ ->
          if hi.(j) > lo.(j) then Rng.uniform rng ~lo:lo.(j) ~hi:hi.(j) else lo.(j))
        x)
    xs

let log_dispersion rng xs k = log (max 1e-12 (Kmeans.fit rng xs ~k).inertia)

let select ?(n_refs = 5) rng xs ~k_min ~k_max =
  let n = Array.length xs in
  if k_min < 1 || k_max < k_min then invalid_arg "Gap_statistic.select: bad range";
  let k_max = Stdlib.min k_max n in
  if k_min > k_max then invalid_arg "Gap_statistic.select: range exceeds sample count";
  let gaps =
    List.init (k_max - k_min + 1) (fun i ->
        let k = k_min + i in
        let observed = log_dispersion (Rng.split rng) xs k in
        let expected =
          let acc = ref 0.0 in
          for _ = 1 to n_refs do
            let ref_data = uniform_reference rng xs in
            acc := !acc +. log_dispersion (Rng.split rng) ref_data k
          done;
          !acc /. float_of_int n_refs
        in
        (k, expected -. observed))
  in
  let best_k, _ =
    List.fold_left
      (fun (bk, bg) (k, g) -> if g > bg then (k, g) else (bk, bg))
      (List.hd gaps) (List.tl gaps)
  in
  { best_k; gaps }
