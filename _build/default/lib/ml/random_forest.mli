(** Random forest: bagged CART trees with per-split feature
    subsampling. Probabilities are the average of per-tree leaf
    histograms, which gives smoother probability vectors than a single
    tree — useful for conformal scoring. *)

type params = {
  n_trees : int;
  tree : Decision_tree.split_params;
  bootstrap_ratio : float;  (** fraction of samples drawn per tree *)
  seed : int;
}

val default_params : params
val train : ?params:params -> ?init:Model.classifier -> int Dataset.t -> Model.classifier
val trainer : ?params:params -> unit -> Model.classifier_trainer

val train_regressor :
  ?params:params -> ?init:Model.regressor -> float Dataset.t -> Model.regressor
