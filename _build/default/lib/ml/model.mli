(** First-class model values. PROM is model-agnostic: all it needs from
    an underlying model is a probability vector per prediction
    (classification), a point estimate (regression), and a feature
    embedding of the input. These records are the OCaml analogue of the
    paper's [ModelInterface] Python class. *)

open Prom_linalg

(** Model-specific internal state (e.g. weight matrices), carried opaquely
    so that a trainer can warm-start from a model it previously produced.
    Each model module extends this type privately. *)
type state = ..

type state += No_state

(** A trained probabilistic classifier. *)
type classifier = {
  n_classes : int;
  predict_proba : Vec.t -> Vec.t;
      (** probability vector of length [n_classes], summing to 1 *)
  name : string;
  state : state;
}

(** A trained regressor. *)
type regressor = { predict : Vec.t -> float; name : string; reg_state : state }

(** A training procedure: given a dataset, produce a classifier. The
    [?init] argument allows warm-starting from a previous model, which
    is how incremental learning retrains (Sec. 5.4). *)
type classifier_trainer = {
  train : ?init:classifier -> int Dataset.t -> classifier;
  trainer_name : string;
}

type regressor_trainer = {
  train_reg : ?init:regressor -> float Dataset.t -> regressor;
  reg_trainer_name : string;
}

(** [predict c x] is the argmax class of [c.predict_proba x]. *)
val predict : classifier -> Vec.t -> int

(** [accuracy c d] is the fraction of samples in [d] that [c] classifies
    correctly. *)
val accuracy : classifier -> int Dataset.t -> float

(** [mse r d] is the mean squared error of [r] on [d]. *)
val mse : regressor -> float Dataset.t -> float

(** [mae r d] is the mean absolute error. *)
val mae : regressor -> float Dataset.t -> float

(** [constant_classifier ~n_classes k] always predicts class [k] with
    probability 1 — useful as a degenerate baseline in tests. *)
val constant_classifier : n_classes:int -> int -> classifier
