open Prom_linalg

type t = { centroids : Vec.t array; assignments : int array; inertia : float }

let assign_nearest centroids v =
  let best = ref 0 and best_d = ref infinity in
  Array.iteri
    (fun i c ->
      let d = Distance.sq_euclidean c v in
      if d < !best_d then begin
        best := i;
        best_d := d
      end)
    centroids;
  (!best, !best_d)

(* k-means++ seeding: each next centre is drawn proportionally to its
   squared distance from the nearest existing centre. *)
let seed_plus_plus rng xs k =
  let n = Array.length xs in
  let centroids = Array.make k xs.(Rng.int rng n) in
  for c = 1 to k - 1 do
    let d2 =
      Array.map (fun x -> snd (assign_nearest (Array.sub centroids 0 c) x)) xs
    in
    let total = Vec.sum d2 in
    let pick = if total <= 0.0 then Rng.int rng n else Rng.categorical rng d2 in
    centroids.(c) <- xs.(pick)
  done;
  Array.map Array.copy centroids

let fit ?(max_iter = 100) rng xs ~k =
  let n = Array.length xs in
  if k < 1 || k > n then invalid_arg "Kmeans.fit: k out of range";
  let dim = Array.length xs.(0) in
  let centroids = ref (seed_plus_plus rng xs k) in
  let assignments = Array.make n 0 in
  let changed = ref true in
  let iter = ref 0 in
  while !changed && !iter < max_iter do
    changed := false;
    incr iter;
    Array.iteri
      (fun i x ->
        let c, _ = assign_nearest !centroids x in
        if c <> assignments.(i) then begin
          assignments.(i) <- c;
          changed := true
        end)
      xs;
    let sums = Array.init k (fun _ -> Array.make dim 0.0) in
    let counts = Array.make k 0 in
    Array.iteri
      (fun i x ->
        let c = assignments.(i) in
        counts.(c) <- counts.(c) + 1;
        Vec.axpy ~alpha:1.0 x sums.(c))
      xs;
    centroids :=
      Array.mapi
        (fun c s ->
          if counts.(c) = 0 then
            (* Re-seed an empty cluster at a random sample. *)
            Array.copy xs.(Rng.int rng n)
          else Vec.scale (1.0 /. float_of_int counts.(c)) s)
        sums
  done;
  let inertia =
    Array.to_list xs
    |> List.mapi (fun i x -> Distance.sq_euclidean !centroids.(assignments.(i)) x)
    |> List.fold_left ( +. ) 0.0
  in
  { centroids = !centroids; assignments; inertia }

let assign t v = fst (assign_nearest t.centroids v)
