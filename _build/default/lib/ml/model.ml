open Prom_linalg

type state = ..
type state += No_state

type classifier = {
  n_classes : int;
  predict_proba : Vec.t -> Vec.t;
  name : string;
  state : state;
}

type regressor = { predict : Vec.t -> float; name : string; reg_state : state }

type classifier_trainer = {
  train : ?init:classifier -> int Dataset.t -> classifier;
  trainer_name : string;
}

type regressor_trainer = {
  train_reg : ?init:regressor -> float Dataset.t -> regressor;
  reg_trainer_name : string;
}

let predict c x = Vec.argmax (c.predict_proba x)

let accuracy c (d : int Dataset.t) =
  if Dataset.length d = 0 then invalid_arg "Model.accuracy: empty dataset";
  let correct = ref 0 in
  Array.iteri (fun i x -> if predict c x = d.y.(i) then incr correct) d.x;
  float_of_int !correct /. float_of_int (Dataset.length d)

let mse r (d : float Dataset.t) =
  if Dataset.length d = 0 then invalid_arg "Model.mse: empty dataset";
  let acc = ref 0.0 in
  Array.iteri (fun i x -> acc := !acc +. ((r.predict x -. d.y.(i)) ** 2.0)) d.x;
  !acc /. float_of_int (Dataset.length d)

let mae r (d : float Dataset.t) =
  if Dataset.length d = 0 then invalid_arg "Model.mae: empty dataset";
  let acc = ref 0.0 in
  Array.iteri (fun i x -> acc := !acc +. abs_float (r.predict x -. d.y.(i))) d.x;
  !acc /. float_of_int (Dataset.length d)

let constant_classifier ~n_classes k =
  if k < 0 || k >= n_classes then invalid_arg "Model.constant_classifier: class out of range";
  {
    n_classes;
    predict_proba =
      (fun _ -> Array.init n_classes (fun i -> if i = k then 1.0 else 0.0));
    name = "constant";
    state = No_state;
  }
