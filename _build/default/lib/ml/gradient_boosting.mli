(** Gradient boosting with regression-tree base learners — the "GBC"
    model of the paper's IR2Vec case studies. Classification boosts
    one-vs-all trees on softmax gradients; regression boosts on
    residuals. Warm-starting appends additional boosting rounds to an
    existing ensemble. *)

type params = {
  n_rounds : int;
  learning_rate : float;  (** shrinkage per round *)
  tree : Decision_tree.split_params;
  subsample : float;  (** row subsampling ratio per round *)
  seed : int;
}

val default_params : params
val train : ?params:params -> ?init:Model.classifier -> int Dataset.t -> Model.classifier
val trainer : ?params:params -> unit -> Model.classifier_trainer

val train_regressor :
  ?params:params -> ?init:Model.regressor -> float Dataset.t -> Model.regressor

val regressor_trainer : ?params:params -> unit -> Model.regressor_trainer
