lib/ml/gap_statistic.ml: Array Kmeans List Prom_linalg Rng Stdlib
