lib/ml/linreg.mli: Dataset Model Prom_linalg Vec
