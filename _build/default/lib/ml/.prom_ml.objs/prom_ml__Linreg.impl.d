lib/ml/linreg.ml: Array Dataset Mat Model Prom_linalg Vec
