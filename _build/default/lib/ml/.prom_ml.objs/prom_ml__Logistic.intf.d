lib/ml/logistic.mli: Dataset Model Prom_linalg Vec
