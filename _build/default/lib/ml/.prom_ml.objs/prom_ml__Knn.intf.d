lib/ml/knn.mli: Dataset Model Prom_linalg Vec
