lib/ml/mlp.ml: Array Dataset Model Prom_linalg Rng Stdlib Vec
