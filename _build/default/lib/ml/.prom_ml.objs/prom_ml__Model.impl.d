lib/ml/model.ml: Array Dataset Prom_linalg Vec
