lib/ml/random_forest.ml: Array Dataset Decision_tree Model Prom_linalg Rng Stdlib Vec
