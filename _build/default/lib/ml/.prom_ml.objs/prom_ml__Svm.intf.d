lib/ml/svm.mli: Dataset Model Prom_linalg Vec
