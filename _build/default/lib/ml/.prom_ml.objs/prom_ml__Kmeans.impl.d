lib/ml/kmeans.ml: Array Distance List Prom_linalg Rng Vec
