lib/ml/mlp.mli: Dataset Model Prom_linalg Vec
