lib/ml/kmeans.mli: Prom_linalg Rng Vec
