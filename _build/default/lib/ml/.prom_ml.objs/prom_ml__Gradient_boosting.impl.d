lib/ml/gradient_boosting.ml: Array Dataset Decision_tree Fun Model Prom_linalg Rng Stats Stdlib Vec
