lib/ml/logistic.ml: Array Dataset Model Prom_linalg Rng Stdlib Vec
