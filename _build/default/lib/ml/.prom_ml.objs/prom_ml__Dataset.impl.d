lib/ml/dataset.ml: Array Fun Prom_linalg Rng Stdlib Vec
