lib/ml/decision_tree.mli: Dataset Model Prom_linalg Vec
