lib/ml/dataset.mli: Prom_linalg Rng Vec
