lib/ml/gap_statistic.mli: Prom_linalg Rng Vec
