lib/ml/svm.ml: Array Dataset Float Fun Model Prom_linalg Rng Vec
