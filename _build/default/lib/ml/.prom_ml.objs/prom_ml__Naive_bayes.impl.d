lib/ml/naive_bayes.ml: Array Dataset Float Mat Model Prom_linalg Stdlib Vec
