lib/ml/model.mli: Dataset Prom_linalg Vec
