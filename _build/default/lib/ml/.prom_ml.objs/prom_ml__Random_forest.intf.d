lib/ml/random_forest.mli: Dataset Decision_tree Model
