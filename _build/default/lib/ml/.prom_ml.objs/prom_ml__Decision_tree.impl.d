lib/ml/decision_tree.ml: Array Dataset Fun Model Prom_linalg Rng Stdlib Vec
