lib/ml/knn.ml: Array Dataset Distance Model Prom_linalg Stdlib Vec
