lib/ml/gradient_boosting.mli: Dataset Decision_tree Model
