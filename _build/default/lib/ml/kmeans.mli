(** k-means clustering with k-means++ seeding. PROM uses it to label the
    calibration set for regression tasks (paper Sec. 5.1.2). *)

open Prom_linalg

type t = {
  centroids : Vec.t array;
  assignments : int array;  (** cluster index per input sample *)
  inertia : float;  (** within-cluster sum of squared distances *)
}

(** [fit rng xs ~k] clusters [xs] into [k] groups. Raises
    [Invalid_argument] if [k < 1] or [k] exceeds the number of
    samples. *)
val fit : ?max_iter:int -> Rng.t -> Vec.t array -> k:int -> t

(** [assign t v] is the index of the nearest centroid to [v]. *)
val assign : t -> Vec.t -> int
