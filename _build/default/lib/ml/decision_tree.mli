(** CART decision trees for classification (Gini impurity) and
    regression (variance reduction). These are the base learners for
    {!Random_forest} and {!Gradient_boosting}. *)

open Prom_linalg

type split_params = {
  max_depth : int;
  min_samples_leaf : int;
  min_samples_split : int;
  max_features : int option;
      (** number of candidate features per split; [None] = all. Used by
          random forests for decorrelation. *)
  seed : int;
}

val default_split_params : split_params

(** A fitted tree. The payload stored at the leaves is polymorphic:
    class histograms for classification, means for regression. *)
type 'leaf tree

(** [leaf_value t x] routes [x] down the tree and returns the leaf
    payload. *)
val leaf_value : 'leaf tree -> Vec.t -> 'leaf

val depth : _ tree -> int
val n_leaves : _ tree -> int

(** [fit_classification ?params d] grows a tree; leaves hold class
    probability vectors of length [n_classes d]. *)
val fit_classification : ?params:split_params -> int Dataset.t -> Vec.t tree

(** [fit_regression ?params d] grows a tree; leaves hold mean targets. *)
val fit_regression : ?params:split_params -> float Dataset.t -> float tree

(** [classifier ?params d] wraps a fitted classification tree as a
    probabilistic classifier. *)
val classifier : ?params:split_params -> int Dataset.t -> Model.classifier

val regressor : ?params:split_params -> float Dataset.t -> Model.regressor
