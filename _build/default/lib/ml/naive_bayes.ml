open Prom_linalg

let train ?(var_smoothing = 1e-6) ?init:_ (d : int Dataset.t) =
  let n = Dataset.length d in
  if n = 0 then invalid_arg "Naive_bayes.train: empty dataset";
  let n_classes = Dataset.n_classes d in
  let dim = Dataset.n_features d in
  let counts = Array.make n_classes 0 in
  let mu = Mat.zeros ~rows:n_classes ~cols:dim in
  let var = Mat.zeros ~rows:n_classes ~cols:dim in
  Array.iteri
    (fun i x ->
      let c = d.y.(i) in
      counts.(c) <- counts.(c) + 1;
      Array.iteri (fun j v -> mu.(c).(j) <- mu.(c).(j) +. v) x)
    d.x;
  for c = 0 to n_classes - 1 do
    let k = float_of_int (Stdlib.max 1 counts.(c)) in
    for j = 0 to dim - 1 do
      mu.(c).(j) <- mu.(c).(j) /. k
    done
  done;
  Array.iteri
    (fun i x ->
      let c = d.y.(i) in
      Array.iteri (fun j v -> var.(c).(j) <- var.(c).(j) +. ((v -. mu.(c).(j)) ** 2.0)) x)
    d.x;
  for c = 0 to n_classes - 1 do
    let k = float_of_int (Stdlib.max 1 counts.(c)) in
    for j = 0 to dim - 1 do
      var.(c).(j) <- (var.(c).(j) /. k) +. var_smoothing
    done
  done;
  let log_prior =
    Array.map (fun c -> log (float_of_int (c + 1) /. float_of_int (n + n_classes))) counts
  in
  {
    Model.n_classes;
    predict_proba =
      (fun x ->
        let log_post =
          Array.init n_classes (fun c ->
              let acc = ref log_prior.(c) in
              for j = 0 to dim - 1 do
                let v = var.(c).(j) in
                let diff = x.(j) -. mu.(c).(j) in
                acc := !acc -. (0.5 *. (log (2.0 *. Float.pi *. v) +. (diff *. diff /. v)))
              done;
              !acc)
        in
        Vec.softmax log_post);
    name = "naive-bayes";
    state = Model.No_state;
  }

let trainer ?var_smoothing () =
  {
    Model.train = (fun ?init d -> train ?var_smoothing ?init d);
    trainer_name = "naive-bayes";
  }
