module Seq = struct
  type spec = { max_len : int; vocab : int }

  let packed_dim spec = spec.max_len + 1

  let encode spec tokens =
    Array.iter
      (fun t ->
        if t < 0 || t >= spec.vocab then
          invalid_arg
            (Printf.sprintf "Encoding.Seq.encode: token %d outside vocab %d" t spec.vocab))
      tokens;
    let n = Stdlib.min (Array.length tokens) spec.max_len in
    let v = Array.make (packed_dim spec) 0.0 in
    v.(0) <- float_of_int n;
    for i = 0 to n - 1 do
      v.(i + 1) <- float_of_int tokens.(i)
    done;
    v

  let decode spec v =
    if Array.length v <> packed_dim spec then
      invalid_arg "Encoding.Seq.decode: wrong packed dimension";
    let n = int_of_float v.(0) in
    Array.init n (fun i -> int_of_float v.(i + 1))
end

module Graph = struct
  type spec = { max_nodes : int; feat_dim : int }
  type graph = { nodes : float array array; edges : (int * int) list }

  let packed_dim spec = 1 + (spec.max_nodes * spec.feat_dim) + (spec.max_nodes * spec.max_nodes)

  let encode spec g =
    let n = Array.length g.nodes in
    if n > spec.max_nodes then invalid_arg "Encoding.Graph.encode: too many nodes";
    Array.iter
      (fun f ->
        if Array.length f <> spec.feat_dim then
          invalid_arg "Encoding.Graph.encode: node feature dimension mismatch")
      g.nodes;
    let v = Array.make (packed_dim spec) 0.0 in
    v.(0) <- float_of_int n;
    Array.iteri
      (fun i f -> Array.blit f 0 v (1 + (i * spec.feat_dim)) spec.feat_dim)
      g.nodes;
    let adj_base = 1 + (spec.max_nodes * spec.feat_dim) in
    List.iter
      (fun (src, dst) ->
        if src < 0 || src >= n || dst < 0 || dst >= n then
          invalid_arg "Encoding.Graph.encode: edge endpoint out of range";
        v.(adj_base + (src * spec.max_nodes) + dst) <- 1.0)
      g.edges;
    v

  let decode spec v =
    if Array.length v <> packed_dim spec then
      invalid_arg "Encoding.Graph.decode: wrong packed dimension";
    let n = int_of_float v.(0) in
    let nodes =
      Array.init n (fun i -> Array.sub v (1 + (i * spec.feat_dim)) spec.feat_dim)
    in
    let adj_base = 1 + (spec.max_nodes * spec.feat_dim) in
    let edges = ref [] in
    for src = n - 1 downto 0 do
      for dst = n - 1 downto 0 do
        if v.(adj_base + (src * spec.max_nodes) + dst) > 0.5 then
          edges := (src, dst) :: !edges
      done
    done;
    { nodes; edges = !edges }
end
