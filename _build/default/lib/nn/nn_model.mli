(** Shared glue between the neural models and {!Prom_ml.Model}: every
    network built here carries an [embed] function exposing its pooled
    hidden representation, which PROM uses as the feature space for its
    adaptive calibration scheme (the paper extracts embeddings "from the
    hidden layer before the output", Sec. 4.1.1). The wrapper also
    carries the model-specific [inner] state used for warm-starting. *)

open Prom_linalg
open Prom_ml

type Model.state +=
  | Embedding of { embed : Vec.t -> Vec.t; inner : Model.state }

(** [embedding_of classifier] returns the model's embedding function if
    it is a [prom_nn] network. *)
val embedding_of : Model.classifier -> (Vec.t -> Vec.t) option

(** [embedding_of_regressor r] likewise for regressors. *)
val embedding_of_regressor : Model.regressor -> (Vec.t -> Vec.t) option

(** [inner s] unwraps the model-specific state, passing other states
    through unchanged. *)
val inner : Model.state -> Model.state
