lib/nn/gnn.mli: Dataset Encoding Model Prom_ml
