lib/nn/nn_model.ml: Model Prom_linalg Prom_ml Vec
