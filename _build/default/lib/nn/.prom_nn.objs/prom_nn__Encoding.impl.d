lib/nn/encoding.ml: Array List Printf Stdlib
