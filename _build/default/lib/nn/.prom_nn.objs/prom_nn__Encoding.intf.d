lib/nn/encoding.mli: Prom_linalg Vec
