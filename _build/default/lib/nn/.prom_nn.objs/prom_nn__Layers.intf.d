lib/nn/layers.mli: Autodiff Param Params Prom_autodiff Prom_linalg Rng Tape
