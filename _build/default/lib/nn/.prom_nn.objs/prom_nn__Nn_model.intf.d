lib/nn/nn_model.mli: Model Prom_linalg Prom_ml Vec
