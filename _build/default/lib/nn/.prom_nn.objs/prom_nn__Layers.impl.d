lib/nn/layers.ml: Array Autodiff Param Params Prom_autodiff Tape
