lib/nn/seq_model.ml: Array Autodiff Dataset Encoding Layers Loss Model Nn_model Optimizer Option Param Params Prom_autodiff Prom_linalg Prom_ml Rng Tape Vec
