lib/nn/gnn.ml: Array Autodiff Dataset Encoding Layers List Loss Model Nn_model Optimizer Option Param Params Prom_autodiff Prom_linalg Prom_ml Rng Tape Vec
