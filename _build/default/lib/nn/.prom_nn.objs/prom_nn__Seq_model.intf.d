lib/nn/seq_model.mli: Dataset Encoding Model Prom_ml
