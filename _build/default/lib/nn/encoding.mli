(** Packing of structured model inputs (token sequences, graphs) into
    flat feature vectors, so sequence and graph networks fit the uniform
    [Vec.t -> probabilities] model interface of {!Prom_ml.Model}. PROM
    itself only ever sees the packed vectors. *)

open Prom_linalg

(** Token sequences, padded/truncated to a fixed length. *)
module Seq : sig
  type spec = { max_len : int; vocab : int }

  (** [encode spec tokens] packs a token-id list (each in
      [0, vocab)). The packed layout is [length :: tokens..], padded
      with zeros. Raises [Invalid_argument] on out-of-range tokens. *)
  val encode : spec -> int array -> Vec.t

  (** [decode spec v] recovers the token ids. *)
  val decode : spec -> Vec.t -> int array

  val packed_dim : spec -> int
end

(** Fixed-capacity directed graphs with per-node feature vectors. *)
module Graph : sig
  type spec = { max_nodes : int; feat_dim : int }

  type graph = {
    nodes : Vec.t array;  (** one feature vector per node *)
    edges : (int * int) list;  (** directed [src, dst] pairs *)
  }

  (** [encode spec g] packs a graph with at most [max_nodes] nodes.
      Raises [Invalid_argument] if the graph exceeds capacity or node
      features have the wrong dimension. *)
  val encode : spec -> graph -> Vec.t

  val decode : spec -> Vec.t -> graph
  val packed_dim : spec -> int
end
