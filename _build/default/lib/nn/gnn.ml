open Prom_linalg
open Prom_autodiff
open Autodiff
open Prom_ml

type params = {
  spec : Encoding.Graph.spec;
  hidden : int;
  rounds : int;
  epochs : int;
  learning_rate : float;
  seed : int;
}

let default_params spec =
  { spec; hidden = 12; rounds = 2; epochs = 15; learning_rate = 0.01; seed = 31 }

type net = {
  input : Layers.dense;  (* node features -> hidden *)
  self_w : Param.mat;
  msg_w : Param.mat;
  upd_b : Param.vec;
  head : Layers.dense;
  all : Params.t;
  p : params;
}

type Model.state += Net of net

let copy_net net =
  let all = Params.create () in
  let copy_mat (m : Param.mat) =
    Params.add_mat all
      { Param.w = Array.map Array.copy m.Param.w; gw = Array.map Array.copy m.Param.gw }
  in
  let copy_vec (v : Param.vec) =
    Params.add_vec all { Param.v = Array.copy v.Param.v; gv = Array.copy v.Param.gv }
  in
  {
    input = Layers.copy_dense all net.input;
    self_w = copy_mat net.self_w;
    msg_w = copy_mat net.msg_w;
    upd_b = copy_vec net.upd_b;
    head = Layers.copy_dense all net.head;
    all;
    p = net.p;
  }

let build p ~out_dim =
  let all = Params.create () in
  let rng = Rng.create p.seed in
  {
    input = Layers.dense all rng ~in_dim:p.spec.Encoding.Graph.feat_dim ~out_dim:p.hidden;
    self_w = Params.add_mat all (Param.mat rng ~rows:p.hidden ~cols:p.hidden);
    msg_w = Params.add_mat all (Param.mat rng ~rows:p.hidden ~cols:p.hidden);
    upd_b = Params.add_vec all (Param.vec p.hidden);
    head = Layers.dense all rng ~in_dim:p.hidden ~out_dim;
    all;
    p;
  }

let pooled tape net packed =
  let g = Encoding.Graph.decode net.p.spec packed in
  let n = Array.length g.Encoding.Graph.nodes in
  if n = 0 then tensor_of (Array.make net.p.hidden 0.0)
  else begin
    let in_neighbours = Array.make n [] in
    List.iter
      (fun (src, dst) -> in_neighbours.(dst) <- src :: in_neighbours.(dst))
      g.Encoding.Graph.edges;
    let states =
      ref
        (Array.map
           (fun f -> Tape.tanh_ tape (Layers.dense_forward tape net.input (tensor_of f)))
           g.Encoding.Graph.nodes)
    in
    for _round = 1 to net.p.rounds do
      let prev = !states in
      states :=
        Array.mapi
          (fun i _ ->
            let self_part = Tape.matvec tape net.self_w prev.(i) in
            let msg_part =
              match in_neighbours.(i) with
              | [] -> tensor_of (Array.make net.p.hidden 0.0)
              | srcs ->
                  Tape.matvec tape net.msg_w
                    (Tape.mean_pool tape (List.map (fun s -> prev.(s)) srcs))
            in
            Tape.tanh_ tape (Tape.add_bias tape net.upd_b (Tape.add tape self_part msg_part)))
          prev
    done;
    Tape.mean_pool tape (Array.to_list !states)
  end

let logits_of tape net packed = Layers.dense_forward tape net.head (pooled tape net packed)

let embed_fn net packed =
  let tape = Tape.create () in
  (pooled tape net packed).data

let train ~params ?init (d : int Dataset.t) =
  if Dataset.length d = 0 then invalid_arg "Gnn.train: empty dataset";
  let n_classes = Dataset.n_classes d in
  let net =
    match Option.map (fun c -> Nn_model.inner c.Model.state) init with
    | Some (Net prev)
      when prev.p.spec = params.spec
           && prev.p.hidden = params.hidden
           && Array.length prev.head.Layers.w.Param.w = n_classes ->
        copy_net prev
    | Some _ | None -> build params ~out_dim:n_classes
  in
  let opt = Optimizer.adam ~lr:params.learning_rate net.all in
  let rng = Rng.create (params.seed + 3) in
  let n = Dataset.length d in
  for _epoch = 1 to params.epochs do
    let order = Rng.permutation rng n in
    Array.iter
      (fun i ->
        let tape = Tape.create () in
        let out = logits_of tape net d.x.(i) in
        let _, seed = Loss.softmax_cross_entropy ~logits:out ~label:d.y.(i) in
        Tape.backward tape ~root:out ~seed;
        Optimizer.step opt)
      order
  done;
  {
    Model.n_classes;
    predict_proba =
      (fun packed ->
        let tape = Tape.create () in
        Vec.softmax (logits_of tape net packed).data);
    name = "gnn";
    state = Nn_model.Embedding { embed = embed_fn net; inner = Net net };
  }

let trainer ~params =
  { Model.train = (fun ?init d -> train ~params ?init d); trainer_name = "gnn" }
