open Prom_linalg
open Prom_ml

type Model.state += Embedding of { embed : Vec.t -> Vec.t; inner : Model.state }

let embedding_of (c : Model.classifier) =
  match c.state with Embedding { embed; _ } -> Some embed | _ -> None

let embedding_of_regressor (r : Model.regressor) =
  match r.reg_state with Embedding { embed; _ } -> Some embed | _ -> None

let inner = function Embedding { inner; _ } -> inner | s -> s
