(** Neural network layers on top of {!Prom_autodiff.Autodiff}: dense,
    LSTM and GRU cells. Each constructor registers its parameters in the
    given {!Autodiff.Params.t} so optimizers see them. *)

open Prom_linalg
open Prom_autodiff
open Autodiff

type dense = { w : Param.mat; b : Param.vec }

val dense : Params.t -> Rng.t -> in_dim:int -> out_dim:int -> dense
val dense_forward : Tape.t -> dense -> tensor -> tensor

(** [copy_dense params d] deep-copies a layer, registering the copy's
    parameters in [params] — used to warm-start training without
    mutating the source model. *)
val copy_dense : Params.t -> dense -> dense

(** A standard LSTM cell: input/forget/output gates plus candidate. *)
type lstm_cell

val lstm : Params.t -> Rng.t -> in_dim:int -> hidden:int -> lstm_cell
val lstm_hidden : lstm_cell -> int

(** [lstm_forward tape cell x (h, c)] is one step, returning
    [(h', c')]. *)
val lstm_forward : Tape.t -> lstm_cell -> tensor -> tensor * tensor -> tensor * tensor

(** [lstm_init cell] is the zero [(h0, c0)] state. *)
val lstm_init : lstm_cell -> tensor * tensor

val copy_lstm : Params.t -> lstm_cell -> lstm_cell

(** A GRU cell: update/reset gates plus candidate. *)
type gru_cell

val gru : Params.t -> Rng.t -> in_dim:int -> hidden:int -> gru_cell
val gru_hidden : gru_cell -> int
val gru_forward : Tape.t -> gru_cell -> tensor -> tensor -> tensor
val gru_init : gru_cell -> tensor
val copy_gru : Params.t -> gru_cell -> gru_cell
