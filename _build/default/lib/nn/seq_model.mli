(** Sequence models over packed token sequences (see {!Encoding.Seq}):
    an LSTM (the paper's DeepTune / VulDeePecker stand-in), a GRU, and a
    single-head attention pooler (the CodeXGLUE / LineVul / TLP
    Transformer stand-in). Classification and regression heads share
    the encoder. Inputs are datasets whose feature vectors were packed
    with {!Encoding.Seq.encode}. *)

open Prom_ml

type arch = Lstm | Gru | Attention

type params = {
  arch : arch;
  spec : Encoding.Seq.spec;
  embed_dim : int;
  hidden : int;
  epochs : int;
  learning_rate : float;
  seed : int;
}

val default_params : Encoding.Seq.spec -> params

(** [train ?params ?init d] fits a sequence classifier on packed
    sequences. [init] warm-starts from a model previously produced with
    the same architecture and dimensions. The returned classifier
    carries an {!Nn_model.Embedding} state exposing the pooled hidden
    vector. *)
val train : params:params -> ?init:Model.classifier -> int Dataset.t -> Model.classifier

val trainer : params:params -> Model.classifier_trainer

(** [train_regressor ~params ?init d] fits a sequence regressor
    (squared loss, linear head). *)
val train_regressor :
  params:params -> ?init:Model.regressor -> float Dataset.t -> Model.regressor

val regressor_trainer : params:params -> Model.regressor_trainer
