open Prom_autodiff
open Autodiff

type dense = { w : Param.mat; b : Param.vec }

let dense params rng ~in_dim ~out_dim =
  {
    w = Params.add_mat params (Param.mat rng ~rows:out_dim ~cols:in_dim);
    b = Params.add_vec params (Param.vec out_dim);
  }

let dense_forward tape d x = Tape.add_bias tape d.b (Tape.matvec tape d.w x)

let copy_mat (params : Params.t) (m : Param.mat) =
  Params.add_mat params
    { Param.w = Array.map Array.copy m.Param.w; gw = Array.map Array.copy m.Param.gw }

let copy_vec (params : Params.t) (v : Param.vec) =
  Params.add_vec params { Param.v = Array.copy v.Param.v; gv = Array.copy v.Param.gv }

let copy_dense params d = { w = copy_mat params d.w; b = copy_vec params d.b }

type gate = { wx : Param.mat; wh : Param.mat; b : Param.vec }

let gate params rng ~in_dim ~hidden =
  {
    wx = Params.add_mat params (Param.mat rng ~rows:hidden ~cols:in_dim);
    wh = Params.add_mat params (Param.mat rng ~rows:hidden ~cols:hidden);
    b = Params.add_vec params (Param.vec hidden);
  }

let gate_forward tape g x h =
  Tape.add_bias tape g.b (Tape.add tape (Tape.matvec tape g.wx x) (Tape.matvec tape g.wh h))

let copy_gate params g =
  { wx = copy_mat params g.wx; wh = copy_mat params g.wh; b = copy_vec params g.b }

type lstm_cell = { input : gate; forget : gate; output : gate; cand : gate; hidden : int }

let lstm params rng ~in_dim ~hidden =
  let cell =
    {
      input = gate params rng ~in_dim ~hidden;
      forget = gate params rng ~in_dim ~hidden;
      output = gate params rng ~in_dim ~hidden;
      cand = gate params rng ~in_dim ~hidden;
      hidden;
    }
  in
  (* Bias the forget gate open, the usual trick for gradient flow. *)
  Array.fill cell.forget.b.v 0 hidden 1.0;
  cell

let lstm_hidden cell = cell.hidden

let lstm_forward tape cell x (h, c) =
  let i = Tape.sigmoid_ tape (gate_forward tape cell.input x h) in
  let f = Tape.sigmoid_ tape (gate_forward tape cell.forget x h) in
  let o = Tape.sigmoid_ tape (gate_forward tape cell.output x h) in
  let g = Tape.tanh_ tape (gate_forward tape cell.cand x h) in
  let c' = Tape.add tape (Tape.mul tape f c) (Tape.mul tape i g) in
  let h' = Tape.mul tape o (Tape.tanh_ tape c') in
  (h', c')

let lstm_init cell =
  (tensor_of (Array.make cell.hidden 0.0), tensor_of (Array.make cell.hidden 0.0))

let copy_lstm params cell =
  {
    input = copy_gate params cell.input;
    forget = copy_gate params cell.forget;
    output = copy_gate params cell.output;
    cand = copy_gate params cell.cand;
    hidden = cell.hidden;
  }

type gru_cell = { update : gate; reset : gate; gcand : gate; ghidden : int }

let gru params rng ~in_dim ~hidden =
  {
    update = gate params rng ~in_dim ~hidden;
    reset = gate params rng ~in_dim ~hidden;
    gcand = gate params rng ~in_dim ~hidden;
    ghidden = hidden;
  }

let gru_hidden cell = cell.ghidden

let gru_forward tape cell x h =
  let z = Tape.sigmoid_ tape (gate_forward tape cell.update x h) in
  let r = Tape.sigmoid_ tape (gate_forward tape cell.reset x h) in
  let h_reset = Tape.mul tape r h in
  let cand =
    Tape.tanh_ tape
      (Tape.add_bias tape cell.gcand.b
         (Tape.add tape
            (Tape.matvec tape cell.gcand.wx x)
            (Tape.matvec tape cell.gcand.wh h_reset)))
  in
  (* h' = (1 - z) * h + z * cand, computed as h + z * (cand - h). *)
  let diff = Tape.add tape cand (Tape.scale tape (-1.0) h) in
  Tape.add tape h (Tape.mul tape z diff)

let gru_init cell = tensor_of (Array.make cell.ghidden 0.0)

let copy_gru params cell =
  {
    update = copy_gate params cell.update;
    reset = copy_gate params cell.reset;
    gcand = copy_gate params cell.gcand;
    ghidden = cell.ghidden;
  }
