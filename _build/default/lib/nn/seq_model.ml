open Prom_linalg
open Prom_autodiff
open Autodiff
open Prom_ml

type arch = Lstm | Gru | Attention

type params = {
  arch : arch;
  spec : Encoding.Seq.spec;
  embed_dim : int;
  hidden : int;
  epochs : int;
  learning_rate : float;
  seed : int;
}

let default_params spec =
  {
    arch = Lstm;
    spec;
    embed_dim = 8;
    hidden = 12;
    epochs = 12;
    learning_rate = 0.01;
    seed = 29;
  }

type encoder =
  | Enc_lstm of Layers.lstm_cell
  | Enc_gru of Layers.gru_cell
  | Enc_attention of { query : Param.vec; proj : Layers.dense }

type net = {
  embeddings : Param.mat;
  encoder : encoder;
  head : Layers.dense;
  all : Params.t;
  p : params;
}

type Model.state += Net of net

let arch_name = function Lstm -> "lstm" | Gru -> "gru" | Attention -> "attention"

(* Deep copy for warm starts: retraining must not mutate the deployed
   model's weights. *)
let copy_net net =
  let all = Params.create () in
  let embeddings =
    Params.add_mat all
      {
        Param.w = Array.map Array.copy net.embeddings.Param.w;
        gw = Array.map Array.copy net.embeddings.Param.gw;
      }
  in
  let encoder =
    match net.encoder with
    | Enc_lstm cell -> Enc_lstm (Layers.copy_lstm all cell)
    | Enc_gru cell -> Enc_gru (Layers.copy_gru all cell)
    | Enc_attention { query; proj } ->
        Enc_attention
          {
            query =
              Params.add_vec all
                { Param.v = Array.copy query.Param.v; gv = Array.copy query.Param.gv };
            proj = Layers.copy_dense all proj;
          }
  in
  let head = Layers.copy_dense all net.head in
  { embeddings; encoder; head; all; p = net.p }

let build p ~out_dim =
  let all = Params.create () in
  let rng = Rng.create p.seed in
  let embeddings = Params.add_mat all (Param.mat rng ~rows:p.spec.Encoding.Seq.vocab ~cols:p.embed_dim) in
  let encoder =
    match p.arch with
    | Lstm -> Enc_lstm (Layers.lstm all rng ~in_dim:p.embed_dim ~hidden:p.hidden)
    | Gru -> Enc_gru (Layers.gru all rng ~in_dim:p.embed_dim ~hidden:p.hidden)
    | Attention ->
        Enc_attention
          {
            query = Params.add_vec all (Param.vec p.embed_dim);
            proj = Layers.dense all rng ~in_dim:p.embed_dim ~out_dim:p.hidden;
          }
  in
  let head = Layers.dense all rng ~in_dim:p.hidden ~out_dim in
  { embeddings; encoder; head; all; p }

(* Pooled hidden representation of a packed sequence. Empty sequences
   encode as the single padding token 0. *)
let encode_hidden tape net packed =
  let tokens = Encoding.Seq.decode net.p.spec packed in
  let tokens = if Array.length tokens = 0 then [| 0 |] else tokens in
  let embeds = Array.map (fun tok -> Tape.row tape net.embeddings tok) tokens in
  match net.encoder with
  | Enc_lstm cell ->
      let state = ref (Layers.lstm_init cell) in
      Array.iter (fun e -> state := Layers.lstm_forward tape cell e !state) embeds;
      fst !state
  | Enc_gru cell ->
      let h = ref (Layers.gru_init cell) in
      Array.iter (fun e -> h := Layers.gru_forward tape cell e !h) embeds;
      !h
  | Enc_attention { query; proj } ->
      let q = tensor_of (Array.copy query.v) in
      let scores = Tape.dot_scores tape q embeds in
      let attn = Tape.softmax1 tape scores in
      let pooled = Tape.weighted_sum tape attn embeds in
      Tape.relu_ tape (Layers.dense_forward tape proj pooled)

let logits_of tape net packed =
  Layers.dense_forward tape net.head (encode_hidden tape net packed)

let train_loop ~epochs ~lr ~seed net (x : Vec.t array) seed_of =
  let opt = Optimizer.adam ~lr net.all in
  let rng = Rng.create (seed + 3) in
  let n = Array.length x in
  for _epoch = 1 to epochs do
    let order = Rng.permutation rng n in
    Array.iter
      (fun i ->
        let tape = Tape.create () in
        let out = logits_of tape net x.(i) in
        let seed_grad = seed_of i out in
        Tape.backward tape ~root:out ~seed:seed_grad;
        Optimizer.step opt)
      order
  done

let embed_fn net packed =
  let tape = Tape.create () in
  (encode_hidden tape net packed).data

let classifier_of_net ~n_classes net =
  {
    Model.n_classes;
    predict_proba =
      (fun packed ->
        let tape = Tape.create () in
        Vec.softmax (logits_of tape net packed).data);
    name = "seq-" ^ arch_name net.p.arch;
    state = Nn_model.Embedding { embed = embed_fn net; inner = Net net };
  }

let train ~params ?init (d : int Dataset.t) =
  if Dataset.length d = 0 then invalid_arg "Seq_model.train: empty dataset";
  let n_classes = Dataset.n_classes d in
  let net =
    match Option.map (fun c -> Nn_model.inner c.Model.state) init with
    | Some (Net prev)
      when prev.p.arch = params.arch
           && prev.p.spec = params.spec
           && prev.p.embed_dim = params.embed_dim
           && prev.p.hidden = params.hidden
           && Array.length prev.head.Layers.w.Param.w = n_classes ->
        copy_net prev
    | Some _ | None -> build params ~out_dim:n_classes
  in
  let seed_of i out = snd (Loss.softmax_cross_entropy ~logits:out ~label:d.y.(i)) in
  train_loop ~epochs:params.epochs ~lr:params.learning_rate ~seed:params.seed net d.x seed_of;
  classifier_of_net ~n_classes net

let trainer ~params =
  {
    Model.train = (fun ?init d -> train ~params ?init d);
    trainer_name = "seq-" ^ arch_name params.arch;
  }

let train_regressor ~params ?init (d : float Dataset.t) =
  if Dataset.length d = 0 then invalid_arg "Seq_model.train_regressor: empty dataset";
  let net =
    match Option.map (fun r -> Nn_model.inner r.Model.reg_state) init with
    | Some (Net prev) when prev.p.arch = params.arch && prev.p.spec = params.spec ->
        copy_net prev
    | Some _ | None -> build params ~out_dim:1
  in
  let seed_of i out = snd (Loss.squared ~pred:out ~target:d.y.(i)) in
  train_loop ~epochs:params.epochs ~lr:params.learning_rate ~seed:params.seed net d.x seed_of;
  {
    Model.predict =
      (fun packed ->
        let tape = Tape.create () in
        (logits_of tape net packed).data.(0));
    name = "seq-" ^ arch_name params.arch ^ "-reg";
    reg_state = Nn_model.Embedding { embed = embed_fn net; inner = Net net };
  }

let regressor_trainer ~params =
  {
    Model.train_reg = (fun ?init d -> train_regressor ~params ?init d);
    reg_trainer_name = "seq-" ^ arch_name params.arch ^ "-reg";
  }
