(** A message-passing graph neural network over packed graphs
    (see {!Encoding.Graph}) — the ProGraML stand-in of case study C3.
    Node states are updated for a fixed number of rounds by combining
    each node's state with the mean of its in-neighbours' states; a
    mean-pooled readout feeds the classification head. *)

open Prom_ml

type params = {
  spec : Encoding.Graph.spec;
  hidden : int;
  rounds : int;  (** message-passing iterations *)
  epochs : int;
  learning_rate : float;
  seed : int;
}

val default_params : Encoding.Graph.spec -> params

val train : params:params -> ?init:Model.classifier -> int Dataset.t -> Model.classifier
val trainer : params:params -> Model.classifier_trainer
