lib/autodiff/autodiff.mli: Prom_linalg
