lib/autodiff/autodiff.ml: Array List Prom_linalg Rng Vec
