open Prom_linalg

type tensor = { data : float array; grad : float array }

let tensor_of data = { data; grad = Array.make (Array.length data) 0.0 }
let fresh n = { data = Array.make n 0.0; grad = Array.make n 0.0 }

module Param = struct
  type mat = { w : float array array; gw : float array array }
  type vec = { v : float array; gv : float array }

  let mat rng ~rows ~cols =
    let scale = sqrt (2.0 /. float_of_int (rows + cols)) in
    {
      w = Array.init rows (fun _ -> Array.init cols (fun _ -> Rng.gaussian rng ~mu:0.0 ~sigma:scale));
      gw = Array.init rows (fun _ -> Array.make cols 0.0);
    }

  let vec n = { v = Array.make n 0.0; gv = Array.make n 0.0 }

  let zero_grads_mat m = Array.iter (fun r -> Array.fill r 0 (Array.length r) 0.0) m.gw
  let zero_grads_vec v = Array.fill v.gv 0 (Array.length v.gv) 0.0
end

module Params = struct
  type t = { mutable mats : Param.mat list; mutable vecs : Param.vec list }

  let create () = { mats = []; vecs = [] }

  let add_mat t m =
    t.mats <- m :: t.mats;
    m

  let add_vec t v =
    t.vecs <- v :: t.vecs;
    v

  let zero_grads t =
    List.iter Param.zero_grads_mat t.mats;
    List.iter Param.zero_grads_vec t.vecs

  let l2_penalty t =
    let acc = ref 0.0 in
    List.iter
      (fun (m : Param.mat) ->
        Array.iter (fun r -> Array.iter (fun x -> acc := !acc +. (x *. x)) r) m.w)
      t.mats;
    List.iter
      (fun (v : Param.vec) -> Array.iter (fun x -> acc := !acc +. (x *. x)) v.v)
      t.vecs;
    !acc

  let iter t ~on_mat ~on_vec =
    List.iter on_mat t.mats;
    List.iter on_vec t.vecs

  let count t =
    let acc = ref 0 in
    List.iter
      (fun (m : Param.mat) -> Array.iter (fun r -> acc := !acc + Array.length r) m.w)
      t.mats;
    List.iter (fun (v : Param.vec) -> acc := !acc + Array.length v.v) t.vecs;
    !acc
end

module Tape = struct
  type t = { mutable ops : (unit -> unit) list; mutable n : int }

  let create () = { ops = []; n = 0 }

  let record t f =
    t.ops <- f :: t.ops;
    t.n <- t.n + 1

  let length t = t.n

  let backward t ~root ~seed =
    if Array.length seed <> Array.length root.grad then
      invalid_arg "Tape.backward: seed dimension mismatch";
    Array.blit seed 0 root.grad 0 (Array.length seed);
    List.iter (fun f -> f ()) t.ops;
    t.ops <- [];
    t.n <- 0

  let matvec t (m : Param.mat) x =
    let rows = Array.length m.w in
    let out = fresh rows in
    for i = 0 to rows - 1 do
      let row = m.w.(i) in
      let acc = ref 0.0 in
      for j = 0 to Array.length x.data - 1 do
        acc := !acc +. (row.(j) *. x.data.(j))
      done;
      out.data.(i) <- !acc
    done;
    record t (fun () ->
        for i = 0 to rows - 1 do
          let g = out.grad.(i) in
          if g <> 0.0 then begin
            let row = m.w.(i) and grow = m.gw.(i) in
            for j = 0 to Array.length x.data - 1 do
              grow.(j) <- grow.(j) +. (g *. x.data.(j));
              x.grad.(j) <- x.grad.(j) +. (g *. row.(j))
            done
          end
        done);
    out

  let add t a b =
    if Array.length a.data <> Array.length b.data then
      invalid_arg "Tape.add: dimension mismatch";
    let out = { data = Vec.add a.data b.data; grad = Array.make (Array.length a.data) 0.0 } in
    record t (fun () ->
        for i = 0 to Array.length out.grad - 1 do
          a.grad.(i) <- a.grad.(i) +. out.grad.(i);
          b.grad.(i) <- b.grad.(i) +. out.grad.(i)
        done);
    out

  let add_bias t (b : Param.vec) x =
    if Array.length b.v <> Array.length x.data then
      invalid_arg "Tape.add_bias: dimension mismatch";
    let out = { data = Vec.add x.data b.v; grad = Array.make (Array.length x.data) 0.0 } in
    record t (fun () ->
        for i = 0 to Array.length out.grad - 1 do
          x.grad.(i) <- x.grad.(i) +. out.grad.(i);
          b.gv.(i) <- b.gv.(i) +. out.grad.(i)
        done);
    out

  let mul t a b =
    if Array.length a.data <> Array.length b.data then
      invalid_arg "Tape.mul: dimension mismatch";
    let out = { data = Vec.mul a.data b.data; grad = Array.make (Array.length a.data) 0.0 } in
    record t (fun () ->
        for i = 0 to Array.length out.grad - 1 do
          a.grad.(i) <- a.grad.(i) +. (out.grad.(i) *. b.data.(i));
          b.grad.(i) <- b.grad.(i) +. (out.grad.(i) *. a.data.(i))
        done);
    out

  let scale t k x =
    let out = { data = Vec.scale k x.data; grad = Array.make (Array.length x.data) 0.0 } in
    record t (fun () ->
        for i = 0 to Array.length out.grad - 1 do
          x.grad.(i) <- x.grad.(i) +. (k *. out.grad.(i))
        done);
    out

  let unary t f f' x =
    let out = { data = Array.map f x.data; grad = Array.make (Array.length x.data) 0.0 } in
    record t (fun () ->
        for i = 0 to Array.length out.grad - 1 do
          x.grad.(i) <- x.grad.(i) +. (out.grad.(i) *. f' x.data.(i) out.data.(i))
        done);
    out

  let tanh_ t x = unary t tanh (fun _ y -> 1.0 -. (y *. y)) x

  let sigmoid_ t x =
    unary t (fun v -> 1.0 /. (1.0 +. exp (-.v))) (fun _ y -> y *. (1.0 -. y)) x

  let relu_ t x =
    unary t (fun v -> if v > 0.0 then v else 0.0) (fun v _ -> if v > 0.0 then 1.0 else 0.0) x

  let concat t a b =
    let na = Array.length a.data and nb = Array.length b.data in
    let out = fresh (na + nb) in
    Array.blit a.data 0 out.data 0 na;
    Array.blit b.data 0 out.data na nb;
    record t (fun () ->
        for i = 0 to na - 1 do
          a.grad.(i) <- a.grad.(i) +. out.grad.(i)
        done;
        for i = 0 to nb - 1 do
          b.grad.(i) <- b.grad.(i) +. out.grad.(na + i)
        done);
    out

  let mean_pool t xs =
    match xs with
    | [] -> invalid_arg "Tape.mean_pool: empty list"
    | first :: _ ->
        let n = Array.length first.data in
        let k = float_of_int (List.length xs) in
        let out = fresh n in
        List.iter
          (fun x ->
            if Array.length x.data <> n then invalid_arg "Tape.mean_pool: ragged inputs";
            for i = 0 to n - 1 do
              out.data.(i) <- out.data.(i) +. (x.data.(i) /. k)
            done)
          xs;
        record t (fun () ->
            List.iter
              (fun x ->
                for i = 0 to n - 1 do
                  x.grad.(i) <- x.grad.(i) +. (out.grad.(i) /. k)
                done)
              xs);
        out

  let weighted_sum t ws xs =
    if Array.length ws.data <> Array.length xs then
      invalid_arg "Tape.weighted_sum: weight/input count mismatch";
    (match xs with [||] -> invalid_arg "Tape.weighted_sum: empty inputs" | _ -> ());
    let n = Array.length xs.(0).data in
    let out = fresh n in
    Array.iteri
      (fun k x ->
        let w = ws.data.(k) in
        for i = 0 to n - 1 do
          out.data.(i) <- out.data.(i) +. (w *. x.data.(i))
        done)
      xs;
    record t (fun () ->
        Array.iteri
          (fun k x ->
            let w = ws.data.(k) in
            let gw = ref 0.0 in
            for i = 0 to n - 1 do
              x.grad.(i) <- x.grad.(i) +. (w *. out.grad.(i));
              gw := !gw +. (out.grad.(i) *. x.data.(i))
            done;
            ws.grad.(k) <- ws.grad.(k) +. !gw)
          xs);
    out

  let softmax1 t x =
    let out = { data = Vec.softmax x.data; grad = Array.make (Array.length x.data) 0.0 } in
    record t (fun () ->
        (* dL/dx_i = s_i * (g_i - sum_j g_j s_j) *)
        let s = out.data and g = out.grad in
        let dot = ref 0.0 in
        for j = 0 to Array.length s - 1 do
          dot := !dot +. (g.(j) *. s.(j))
        done;
        for i = 0 to Array.length s - 1 do
          x.grad.(i) <- x.grad.(i) +. (s.(i) *. (g.(i) -. !dot))
        done);
    out

  let dot_scores t q keys =
    (match keys with [||] -> invalid_arg "Tape.dot_scores: empty keys" | _ -> ());
    let dim = Array.length q.data in
    let inv = 1.0 /. sqrt (float_of_int dim) in
    let out = fresh (Array.length keys) in
    Array.iteri (fun k key -> out.data.(k) <- Vec.dot q.data key.data *. inv) keys;
    record t (fun () ->
        Array.iteri
          (fun k key ->
            let g = out.grad.(k) *. inv in
            if g <> 0.0 then
              for i = 0 to dim - 1 do
                q.grad.(i) <- q.grad.(i) +. (g *. key.data.(i));
                key.grad.(i) <- key.grad.(i) +. (g *. q.data.(i))
              done)
          keys);
    out

  let row t (m : Param.mat) i =
    let out = { data = Array.copy m.w.(i); grad = Array.make (Array.length m.w.(i)) 0.0 } in
    record t (fun () ->
        let g = m.gw.(i) in
        for j = 0 to Array.length g - 1 do
          g.(j) <- g.(j) +. out.grad.(j)
        done);
    out
end

module Loss = struct
  let softmax_cross_entropy ~logits ~label =
    let p = Vec.softmax logits.data in
    let loss = -.log (max p.(label) 1e-12) in
    let seed = Array.mapi (fun i pi -> pi -. (if i = label then 1.0 else 0.0)) p in
    (loss, seed)

  let squared ~pred ~target =
    if Array.length pred.data <> 1 then invalid_arg "Loss.squared: expected scalar tensor";
    let err = pred.data.(0) -. target in
    (0.5 *. err *. err, [| err |])
end

module Optimizer = struct
  type kind =
    | Sgd of { lr : float; momentum : float; vel : (float array array list * float array list) }
    | Adam of {
        lr : float;
        beta1 : float;
        beta2 : float;
        eps : float;
        mutable t : int;
        m1 : (float array array list * float array list);
        m2 : (float array array list * float array list);
      }

  type t = { params : Params.t; kind : kind }

  let mirrors params =
    let mats = ref [] and vecs = ref [] in
    Params.iter params
      ~on_mat:(fun m ->
        mats := Array.map (fun r -> Array.make (Array.length r) 0.0) m.Param.w :: !mats)
      ~on_vec:(fun v -> vecs := Array.make (Array.length v.Param.v) 0.0 :: !vecs);
    (List.rev !mats, List.rev !vecs)

  let sgd ?(momentum = 0.0) ~lr params =
    { params; kind = Sgd { lr; momentum; vel = mirrors params } }

  let adam ?(beta1 = 0.9) ?(beta2 = 0.999) ?(eps = 1e-8) ~lr params =
    { params; kind = Adam { lr; beta1; beta2; eps; t = 0; m1 = mirrors params; m2 = mirrors params } }

  (* Walk parameters and their mirror buffers in lock-step. *)
  let zip_apply params (mat_bufs, vec_bufs) f_mat f_vec =
    let mats = ref mat_bufs and vecs = ref vec_bufs in
    Params.iter params
      ~on_mat:(fun m ->
        match !mats with
        | buf :: rest ->
            mats := rest;
            f_mat m buf
        | [] -> assert false)
      ~on_vec:(fun v ->
        match !vecs with
        | buf :: rest ->
            vecs := rest;
            f_vec v buf
        | [] -> assert false)

  let zip_apply2 params (ma, va) (mb, vb) f_mat f_vec =
    let mas = ref ma and vas = ref va and mbs = ref mb and vbs = ref vb in
    Params.iter params
      ~on_mat:(fun m ->
        match (!mas, !mbs) with
        | b1 :: r1, b2 :: r2 ->
            mas := r1;
            mbs := r2;
            f_mat m b1 b2
        | _ -> assert false)
      ~on_vec:(fun v ->
        match (!vas, !vbs) with
        | b1 :: r1, b2 :: r2 ->
            vas := r1;
            vbs := r2;
            f_vec v b1 b2
        | _ -> assert false)

  let step t =
    (match t.kind with
    | Sgd { lr; momentum; vel } ->
        zip_apply t.params vel
          (fun m vel ->
            Array.iteri
              (fun i row ->
                let g = m.Param.gw.(i) and v = vel.(i) in
                for j = 0 to Array.length row - 1 do
                  v.(j) <- (momentum *. v.(j)) -. (lr *. g.(j));
                  row.(j) <- row.(j) +. v.(j)
                done)
              m.Param.w)
          (fun v vel ->
            for j = 0 to Array.length v.Param.v - 1 do
              vel.(j) <- (momentum *. vel.(j)) -. (lr *. v.Param.gv.(j));
              v.Param.v.(j) <- v.Param.v.(j) +. vel.(j)
            done)
    | Adam a ->
        a.t <- a.t + 1;
        let tc = float_of_int a.t in
        let corr1 = 1.0 -. (a.beta1 ** tc) and corr2 = 1.0 -. (a.beta2 ** tc) in
        let update x g m1 m2 =
          let m1' = (a.beta1 *. m1) +. ((1.0 -. a.beta1) *. g) in
          let m2' = (a.beta2 *. m2) +. ((1.0 -. a.beta2) *. g *. g) in
          let mh = m1' /. corr1 and vh = m2' /. corr2 in
          (x -. (a.lr *. mh /. (sqrt vh +. a.eps)), m1', m2')
        in
        zip_apply2 t.params a.m1 a.m2
          (fun m b1 b2 ->
            Array.iteri
              (fun i row ->
                let g = m.Param.gw.(i) in
                for j = 0 to Array.length row - 1 do
                  let x', m1', m2' = update row.(j) g.(j) b1.(i).(j) b2.(i).(j) in
                  row.(j) <- x';
                  b1.(i).(j) <- m1';
                  b2.(i).(j) <- m2'
                done)
              m.Param.w)
          (fun v b1 b2 ->
            for j = 0 to Array.length v.Param.v - 1 do
              let x', m1', m2' = update v.Param.v.(j) v.Param.gv.(j) b1.(j) b2.(j) in
              v.Param.v.(j) <- x';
              b1.(j) <- m1';
              b2.(j) <- m2'
            done));
    Params.zero_grads t.params
end
