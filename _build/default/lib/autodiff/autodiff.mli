(** Reverse-mode automatic differentiation over 1-D float tensors.

    A {!Tape.t} records operations as they execute; {!Tape.backward}
    replays the recorded closures in reverse to accumulate gradients.
    Operations are vector-level (a matrix-vector product is a single
    tape entry), which keeps recurrent models fast enough to train in
    pure OCaml. The network libraries in [prom_nn] are built on top. *)

(** A tensor paired with its gradient accumulator. *)
type tensor = { data : float array; grad : float array }

val tensor_of : float array -> tensor

(** Trainable parameters: matrices and vectors with gradient storage. *)
module Param : sig
  type mat = { w : float array array; gw : float array array }
  type vec = { v : float array; gv : float array }

  (** [mat rng ~rows ~cols] draws Xavier-initialized weights. *)
  val mat : Prom_linalg.Rng.t -> rows:int -> cols:int -> mat

  val vec : int -> vec
  val zero_grads_mat : mat -> unit
  val zero_grads_vec : vec -> unit
end

(** A collection of parameters, so optimizers can iterate them. *)
module Params : sig
  type t

  val create : unit -> t
  val add_mat : t -> Param.mat -> Param.mat
  val add_vec : t -> Param.vec -> Param.vec
  val zero_grads : t -> unit

  (** [l2_penalty t] is the sum of squared weights — for reporting. *)
  val l2_penalty : t -> float

  val iter :
    t -> on_mat:(Param.mat -> unit) -> on_vec:(Param.vec -> unit) -> unit

  val count : t -> int
  (** total scalar parameter count *)
end

module Tape : sig
  type t

  val create : unit -> t

  (** [backward t ~root ~seed] sets [root.grad <- seed] and replays all
      recorded operations in reverse. The tape is cleared afterwards, so
      a tape value can be reused across training steps. *)
  val backward : t -> root:tensor -> seed:float array -> unit

  (** Number of recorded operations (for tests). *)
  val length : t -> int

  (* Differentiable operations. All return fresh tensors and record
     their backward closure on the tape. *)

  val matvec : t -> Param.mat -> tensor -> tensor
  val add : t -> tensor -> tensor -> tensor
  val add_bias : t -> Param.vec -> tensor -> tensor
  val mul : t -> tensor -> tensor -> tensor
  val scale : t -> float -> tensor -> tensor
  val tanh_ : t -> tensor -> tensor
  val sigmoid_ : t -> tensor -> tensor
  val relu_ : t -> tensor -> tensor
  val concat : t -> tensor -> tensor -> tensor

  (** [mean_pool t xs] averages a non-empty list of equal-length
      tensors. *)
  val mean_pool : t -> tensor list -> tensor

  (** [weighted_sum t ws xs] computes [sum_i ws_i * xs_i] where the
      weights tensor has one scalar per element of [xs]. Gradients flow
      to both the weights and the inputs — the core of attention. *)
  val weighted_sum : t -> tensor -> tensor array -> tensor

  (** [softmax1 t x] is softmax along the (only) axis. *)
  val softmax1 : t -> tensor -> tensor

  (** [dot_scores t q keys] returns a tensor of [q . keys_i /
      sqrt dim] scores — attention logits. *)
  val dot_scores : t -> tensor -> tensor array -> tensor

  (** [row t m i] selects row [i] of a parameter matrix as a tensor —
      an embedding lookup; gradients accumulate into that row. *)
  val row : t -> Param.mat -> int -> tensor
end

(** Loss helpers. These do not extend the tape: they return the seed
    gradient to pass to {!Tape.backward}. *)
module Loss : sig
  (** [softmax_cross_entropy ~logits ~label] returns
      [(loss, dloss/dlogits)]. *)
  val softmax_cross_entropy : logits:tensor -> label:int -> float * float array

  (** [squared ~pred ~target] for 1-element prediction tensors. *)
  val squared : pred:tensor -> target:float -> float * float array
end

(** Gradient-descent optimizers over a {!Params.t}. *)
module Optimizer : sig
  type t

  val sgd : ?momentum:float -> lr:float -> Params.t -> t
  val adam : ?beta1:float -> ?beta2:float -> ?eps:float -> lr:float -> Params.t -> t

  (** [step t] applies one update from the accumulated gradients and
      zeroes them. *)
  val step : t -> unit
end
