(** Dense vectors of floats with the small set of operations the rest of
    the library needs. Vectors are plain [float array]s so callers can
    interoperate freely with the standard library. *)

type t = float array

val zeros : int -> t
val ones : int -> t
val init : int -> (int -> float) -> t
val copy : t -> t

(** [add a b] is the element-wise sum. Raises [Invalid_argument] on
    dimension mismatch, as do all binary operations below. *)
val add : t -> t -> t

val sub : t -> t -> t
val mul : t -> t -> t

(** [scale k a] multiplies every component by [k]. *)
val scale : float -> t -> t

(** [axpy ~alpha x y] updates [y <- alpha * x + y] in place. *)
val axpy : alpha:float -> t -> t -> unit

val dot : t -> t -> float
val norm : t -> float
val norm_sq : t -> float
val sum : t -> float
val mean : t -> float
val map : (float -> float) -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t

(** [argmax a] returns the index of the largest component (first on
    ties). Raises [Invalid_argument] on an empty vector. *)
val argmax : t -> int

val argmin : t -> int
val max : t -> float
val min : t -> float

(** [softmax a] is the numerically stable softmax of [a]. *)
val softmax : t -> t

(** [normalize a] rescales [a] to unit L2 norm; the zero vector is
    returned unchanged. *)
val normalize : t -> t

(** [concat vs] concatenates vectors in order. *)
val concat : t list -> t

val pp : Format.formatter -> t -> unit
