lib/linalg/stats.ml: Array Format Stdlib
