lib/linalg/distance.ml: Array Stdlib Vec
