lib/linalg/rng.mli:
