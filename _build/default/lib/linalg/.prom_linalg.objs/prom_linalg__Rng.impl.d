lib/linalg/rng.ml: Array Float Random
