lib/linalg/distance.mli: Vec
