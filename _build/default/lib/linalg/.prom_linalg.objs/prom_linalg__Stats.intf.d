lib/linalg/stats.mli: Format
