let check a b =
  if Array.length a <> Array.length b then
    invalid_arg "Distance: dimension mismatch"

let sq_euclidean a b =
  check a b;
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    let d = a.(i) -. b.(i) in
    acc := !acc +. (d *. d)
  done;
  !acc

let euclidean a b = sqrt (sq_euclidean a b)

let manhattan a b =
  check a b;
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. abs_float (a.(i) -. b.(i))
  done;
  !acc

let cosine a b =
  check a b;
  let na = Vec.norm a and nb = Vec.norm b in
  if na = 0.0 || nb = 0.0 then 1.0 else 1.0 -. (Vec.dot a b /. (na *. nb))

let chebyshev a b =
  check a b;
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := Stdlib.max !acc (abs_float (a.(i) -. b.(i)))
  done;
  !acc

let rank_by_distance ~dist xs v =
  let ranked = Array.mapi (fun i x -> (i, dist x v)) xs in
  Array.sort (fun (_, d1) (_, d2) -> compare d1 d2) ranked;
  ranked

let nearest ~dist xs v k =
  let ranked = rank_by_distance ~dist xs v in
  let k = Stdlib.min k (Array.length ranked) in
  Array.init k (fun i -> fst ranked.(i))
