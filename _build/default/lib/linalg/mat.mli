(** Dense row-major matrices. A matrix is an array of rows; rows are
    [Vec.t]. Construction functions validate that all rows share the same
    length. *)

type t = float array array

val create : rows:int -> cols:int -> float -> t
val zeros : rows:int -> cols:int -> t
val init : rows:int -> cols:int -> (int -> int -> float) -> t

(** [of_rows rows] validates rectangularity. Raises [Invalid_argument]
    if rows have differing lengths. *)
val of_rows : float array array -> t

val rows : t -> int
val cols : t -> int
val copy : t -> t
val transpose : t -> t

(** [matvec m v] is the matrix-vector product. *)
val matvec : t -> Vec.t -> Vec.t

(** [matmul a b] is the matrix product. Raises [Invalid_argument] on
    inner-dimension mismatch. *)
val matmul : t -> t -> t

val add : t -> t -> t
val scale : float -> t -> t
val row : t -> int -> Vec.t
val col : t -> int -> Vec.t

(** [identity n] is the [n] x [n] identity matrix. *)
val identity : int -> t

(** [solve a b] solves the linear system [a x = b] by Gaussian
    elimination with partial pivoting. Raises [Failure] if [a] is
    singular (pivot below [1e-12]). [a] and [b] are not modified. *)
val solve : t -> Vec.t -> Vec.t

(** [gram m] is [m^T m], the Gram matrix of the columns of [m]. *)
val gram : t -> t

val pp : Format.formatter -> t -> unit
