type t = float array array

let create ~rows ~cols v = Array.init rows (fun _ -> Array.make cols v)
let zeros ~rows ~cols = create ~rows ~cols 0.0
let init ~rows ~cols f = Array.init rows (fun i -> Array.init cols (fun j -> f i j))

let of_rows rows =
  (match Array.length rows with
  | 0 -> ()
  | _ ->
      let c = Array.length rows.(0) in
      Array.iter
        (fun r ->
          if Array.length r <> c then invalid_arg "Mat.of_rows: ragged rows")
        rows);
  rows

let rows m = Array.length m
let cols m = if Array.length m = 0 then 0 else Array.length m.(0)
let copy m = Array.map Array.copy m
let transpose m = init ~rows:(cols m) ~cols:(rows m) (fun i j -> m.(j).(i))

let matvec m v =
  if cols m <> Array.length v then invalid_arg "Mat.matvec: dimension mismatch";
  Array.map (fun row -> Vec.dot row v) m

let matmul a b =
  if cols a <> rows b then invalid_arg "Mat.matmul: dimension mismatch";
  let bt = transpose b in
  init ~rows:(rows a) ~cols:(cols b) (fun i j -> Vec.dot a.(i) bt.(j))

let add a b =
  if rows a <> rows b || cols a <> cols b then
    invalid_arg "Mat.add: dimension mismatch";
  init ~rows:(rows a) ~cols:(cols a) (fun i j -> a.(i).(j) +. b.(i).(j))

let scale k m = Array.map (Vec.scale k) m
let row m i = Array.copy m.(i)
let col m j = Array.init (rows m) (fun i -> m.(i).(j))
let identity n = init ~rows:n ~cols:n (fun i j -> if i = j then 1.0 else 0.0)

let solve a b =
  let n = rows a in
  if cols a <> n || Array.length b <> n then
    invalid_arg "Mat.solve: expected square system";
  let m = copy a in
  let y = Array.copy b in
  for k = 0 to n - 1 do
    (* Partial pivoting: bring the largest remaining entry of column k up. *)
    let pivot = ref k in
    for i = k + 1 to n - 1 do
      if abs_float m.(i).(k) > abs_float m.(!pivot).(k) then pivot := i
    done;
    if abs_float m.(!pivot).(k) < 1e-12 then failwith "Mat.solve: singular matrix";
    if !pivot <> k then begin
      let tmp = m.(k) in
      m.(k) <- m.(!pivot);
      m.(!pivot) <- tmp;
      let tb = y.(k) in
      y.(k) <- y.(!pivot);
      y.(!pivot) <- tb
    end;
    for i = k + 1 to n - 1 do
      let f = m.(i).(k) /. m.(k).(k) in
      if f <> 0.0 then begin
        for j = k to n - 1 do
          m.(i).(j) <- m.(i).(j) -. (f *. m.(k).(j))
        done;
        y.(i) <- y.(i) -. (f *. y.(k))
      end
    done
  done;
  let x = Array.make n 0.0 in
  for i = n - 1 downto 0 do
    let acc = ref y.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (m.(i).(j) *. x.(j))
    done;
    x.(i) <- !acc /. m.(i).(i)
  done;
  x

let gram m = matmul (transpose m) m

let pp fmt m =
  Format.fprintf fmt "@[<v>";
  Array.iter (fun r -> Format.fprintf fmt "%a@," Vec.pp r) m;
  Format.fprintf fmt "@]"
