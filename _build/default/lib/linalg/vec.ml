type t = float array

let zeros n = Array.make n 0.0
let ones n = Array.make n 1.0
let init = Array.init
let copy = Array.copy

let check_dims name a b =
  if Array.length a <> Array.length b then
    invalid_arg (Printf.sprintf "Vec.%s: dimension mismatch (%d vs %d)" name (Array.length a) (Array.length b))

let add a b =
  check_dims "add" a b;
  Array.mapi (fun i x -> x +. b.(i)) a

let sub a b =
  check_dims "sub" a b;
  Array.mapi (fun i x -> x -. b.(i)) a

let mul a b =
  check_dims "mul" a b;
  Array.mapi (fun i x -> x *. b.(i)) a

let scale k a = Array.map (fun x -> k *. x) a

let axpy ~alpha x y =
  check_dims "axpy" x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- (alpha *. x.(i)) +. y.(i)
  done

let dot a b =
  check_dims "dot" a b;
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let norm_sq a = dot a a
let norm a = sqrt (norm_sq a)
let sum a = Array.fold_left ( +. ) 0.0 a

let mean a =
  if Array.length a = 0 then invalid_arg "Vec.mean: empty vector";
  sum a /. float_of_int (Array.length a)

let map = Array.map

let map2 f a b =
  check_dims "map2" a b;
  Array.mapi (fun i x -> f x b.(i)) a

let arg_best better a =
  if Array.length a = 0 then invalid_arg "Vec.arg_best: empty vector";
  let best = ref 0 in
  for i = 1 to Array.length a - 1 do
    if better a.(i) a.(!best) then best := i
  done;
  !best

let argmax a = arg_best ( > ) a
let argmin a = arg_best ( < ) a
let max a = a.(argmax a)
let min a = a.(argmin a)

let softmax a =
  let m = max a in
  let e = Array.map (fun x -> exp (x -. m)) a in
  let z = sum e in
  Array.map (fun x -> x /. z) e

let normalize a =
  let n = norm a in
  if n = 0.0 then copy a else scale (1.0 /. n) a

let concat vs = Array.concat vs

let pp fmt a =
  Format.fprintf fmt "[|";
  Array.iteri
    (fun i x ->
      if i > 0 then Format.fprintf fmt "; ";
      Format.fprintf fmt "%g" x)
    a;
  Format.fprintf fmt "|]"
