type t = Random.State.t

let create seed = Random.State.make [| seed; 0x9e3779b9; seed lxor 0x85ebca6b |]

let split t =
  let seed = Random.State.bits t in
  create seed

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  Random.State.int t bound

let float t bound = Random.State.float t bound
let uniform t ~lo ~hi = lo +. Random.State.float t (hi -. lo)
let bool t = Random.State.bool t
let bernoulli t p = Random.State.float t 1.0 < p

let gaussian t ~mu ~sigma =
  (* Box-Muller; guard against log 0 by nudging u1 away from zero. *)
  let u1 = max (Random.State.float t 1.0) 1e-12 in
  let u2 = Random.State.float t 1.0 in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  mu +. (sigma *. z)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  a

let choice t a =
  if Array.length a = 0 then invalid_arg "Rng.choice: empty array";
  a.(Random.State.int t (Array.length a))

let sample t a k =
  let n = Array.length a in
  if k < 0 || k > n then invalid_arg "Rng.sample: k out of range";
  let idx = permutation t n in
  Array.init k (fun i -> a.(idx.(i)))

let categorical t weights =
  let total = Array.fold_left ( +. ) 0.0 weights in
  if total <= 0.0 then invalid_arg "Rng.categorical: weights sum to zero";
  Array.iter
    (fun w -> if w < 0.0 then invalid_arg "Rng.categorical: negative weight")
    weights;
  let r = Random.State.float t total in
  let rec scan i acc =
    if i = Array.length weights - 1 then i
    else
      let acc = acc +. weights.(i) in
      if r < acc then i else scan (i + 1) acc
  in
  scan 0 0.0
