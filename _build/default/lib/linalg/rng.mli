(** Seeded pseudo-random number generation.

    All stochastic components of the library thread an explicit [Rng.t]
    so that every experiment is reproducible from a single integer seed.
    The generator wraps [Random.State] from the standard library. *)

type t

(** [create seed] returns a fresh generator determined by [seed]. *)
val create : int -> t

(** [split t] derives a new, independent generator from [t], advancing
    [t]. Useful to hand sub-components their own stream. *)
val split : t -> t

(** [int t bound] draws uniformly from [0, bound). Raises
    [Invalid_argument] if [bound <= 0]. *)
val int : t -> int -> int

(** [float t bound] draws uniformly from [0, bound). *)
val float : t -> float -> float

(** [uniform t ~lo ~hi] draws uniformly from [lo, hi). *)
val uniform : t -> lo:float -> hi:float -> float

(** [bool t] draws a fair coin flip. *)
val bool : t -> bool

(** [bernoulli t p] is [true] with probability [p]. *)
val bernoulli : t -> float -> bool

(** [gaussian t ~mu ~sigma] draws from a normal distribution using the
    Box-Muller transform. *)
val gaussian : t -> mu:float -> sigma:float -> float

(** [shuffle t a] permutes [a] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit

(** [permutation t n] returns a random permutation of [0 .. n-1]. *)
val permutation : t -> int -> int array

(** [choice t a] picks one element uniformly. Raises [Invalid_argument]
    on an empty array. *)
val choice : t -> 'a array -> 'a

(** [sample t a k] draws [k] distinct elements without replacement.
    Raises [Invalid_argument] if [k] exceeds the array length. *)
val sample : t -> 'a array -> int -> 'a array

(** [categorical t weights] draws an index proportionally to the
    non-negative [weights]. Raises [Invalid_argument] if all weights are
    zero or any is negative. *)
val categorical : t -> float array -> int
