(* Embedding PROM in a non-OCaml host (paper Sec. 8): the host — say, a
   C++ compiler with its own ML heuristic — keeps its model and
   inference entirely to itself and only hands PROM intermediate
   results: the input's feature vector and the prediction's probability
   vector. PROM answers with a single accept/reject boolean.

   This example plays both roles: a "host-side model" produces
   probability vectors; the PROM side sees only (features, label, proba)
   calibration triples and the per-query (features, proba) pairs. A
   deployment monitor aggregates the verdicts into an ageing signal.

   Run with: dune exec examples/external_host.exe *)

open Prom_linalg
open Prom

(* --- the host side: some opaque heuristic we never hand to PROM --- *)
let host_predict_proba features =
  (* a hand-written "model": class 0 left of the diagonal, class 1 right,
     with confidence from the margin *)
  let margin = features.(0) -. features.(1) in
  let p1 = 1.0 /. (1.0 +. exp (-2.0 *. margin)) in
  [| 1.0 -. p1; p1 |]

let () =
  let rng = Rng.create 2024 in
  (* Calibration triples exported by the host: features, true label and
     the host model's probability vector. *)
  let calibration =
    List.init 150 (fun _ ->
        let f =
          [| Rng.gaussian rng ~mu:0.0 ~sigma:1.0; Rng.gaussian rng ~mu:0.0 ~sigma:1.0 |]
        in
        let label = if f.(0) -. f.(1) > 0.0 then 1 else 0 in
        (f, label, host_predict_proba f))
  in
  let svc = Service.create calibration in

  let probe name f =
    let proba = host_predict_proba f in
    let accept = Service.should_accept svc ~features:f ~proba in
    let cred, conf, dist = Service.scores svc ~features:f ~proba in
    Printf.printf "%-24s -> %s (cred %.2f, conf %.2f, dist-p %.2f)\n" name
      (if accept then "ACCEPT" else "REJECT")
      cred conf dist
  in
  probe "typical (0.8, -0.3)" [| 0.8; -0.3 |];
  probe "typical (-1.1, 0.4)" [| -1.1; 0.4 |];
  probe "drifted (9.0, 9.5)" [| 9.0; 9.5 |];
  probe "drifted (-7.0, 12.0)" [| -7.0; 12.0 |];

  (* Ageing monitor over a stream that starts in-distribution and then
     shifts — the operational retraining signal. *)
  let monitor = Monitor.create ~window:40 ~threshold:0.5 ~patience:2 () in
  let stream phase_shifted =
    let mu = if phase_shifted then 8.0 else 0.0 in
    let f = [| Rng.gaussian rng ~mu ~sigma:1.0; Rng.gaussian rng ~mu ~sigma:1.0 |] in
    not (Service.should_accept svc ~features:f ~proba:(host_predict_proba f))
  in
  let run n phase_shifted =
    let final = ref (Monitor.status monitor) in
    for _ = 1 to n do
      final := Monitor.observe monitor ~drifted:(stream phase_shifted)
    done;
    !final
  in
  let s1 = run 120 false in
  Printf.printf "\nafter 120 in-distribution queries : %s (drift rate %.2f)\n"
    (Monitor.status_to_string s1) (Monitor.drift_rate monitor);
  let s2 = run 160 true in
  Printf.printf "after 160 shifted queries          : %s (drift rate %.2f)\n"
    (Monitor.status_to_string s2) (Monitor.drift_rate monitor)
