(* Extending PROM: nonconformity functions are plain values, so adding
   an expert to the committee is a record literal — no new types or
   registration (paper Sec. 5.1.1, "other nonconformity functions can be
   easily incorporated").

   This example adds a margin-based expert (difference between the top
   two probabilities) and compares a detector using the default
   committee against one using the extended committee.

   Run with: dune exec examples/custom_committee.exe *)

open Prom_linalg
open Prom_ml
open Prom

(* The margin score: small gaps between the top two classes mean an
   ambiguous prediction, so nonconformity is 1 - margin when scoring the
   top label, and 1 + margin for any other label. *)
let margin : Nonconformity.cls =
  {
    Nonconformity.cls_name = "Margin";
    cls_discrete = false;
    cls_score =
      (fun ~proba ~label ->
        let top = Vec.argmax proba in
        let second =
          let best = ref 0.0 in
          Array.iteri (fun i p -> if i <> top && p > !best then best := p) proba;
          !best
        in
        let m = proba.(top) -. second in
        if label = top then 1.0 -. m else 1.0 +. m);
  }

let make_blob rng ~cx ~cy ~label n =
  Array.init n (fun _ ->
      ( [| Rng.gaussian rng ~mu:cx ~sigma:0.8; Rng.gaussian rng ~mu:cy ~sigma:0.8 |],
        label ))

let () =
  let rng = Rng.create 99 in
  let samples =
    Array.concat
      [
        make_blob rng ~cx:0.0 ~cy:0.0 ~label:0 150;
        make_blob rng ~cx:2.5 ~cy:2.5 ~label:1 150;
        make_blob rng ~cx:(-2.5) ~cy:2.5 ~label:2 150;
      ]
  in
  let data = Dataset.create (Array.map fst samples) (Array.map snd samples) in
  let train, calibration = Framework.data_partitioning ~seed:3 data in
  let model = Mlp.train train in

  let drift = Array.map fst (make_blob rng ~cx:5.0 ~cy:(-4.0) ~label:0 60) in
  let id = Array.map fst (make_blob rng ~cx:0.0 ~cy:0.0 ~label:0 60) in

  let evaluate name committee =
    let det =
      Detector.Classification.create ~committee ~model ~feature_of:Fun.id calibration
    in
    let count xs =
      Array.fold_left
        (fun acc x -> if snd (Detector.Classification.predict det x) then acc + 1 else acc)
        0 xs
    in
    Printf.printf "%-22s flags %2d/60 in-distribution, %2d/60 drifted\n" name (count id)
      (count drift)
  in
  evaluate "default committee" Nonconformity.default_committee;
  evaluate "default + Margin" (Nonconformity.default_committee @ [ margin ]);
  evaluate "Margin alone" [ margin ]
