(* Case study C1 end-to-end: an ML compiler heuristic picks GPU
   thread-coarsening factors; PROM guards it against an unseen
   benchmark suite and repairs it with one incremental-learning round.

   Run with: dune exec examples/thread_coarsening_demo.exe *)

open Prom_linalg
open Prom_tasks

let () =
  let scenario = Thread_coarsening.scenario ~kernels_per_suite:80 ~seed:11 () in
  Printf.printf
    "C1: train on %d (kernel, GPU) pairs from amd-sdk + nvidia-sdk,\n\
    \    deploy on %d pairs from the unseen parboil suite.\n\n"
    (Array.length scenario.Case_study.train_w)
    (Array.length scenario.Case_study.drift_w);
  List.iter
    (fun spec ->
      let r = Case_study.run ~seed:11 scenario spec in
      let mean = Stats.mean in
      Printf.printf "%-14s design %.3f -> deploy %.3f -> with PROM %.3f\n"
        r.Case_study.model_name (mean r.Case_study.design_perf)
        (mean r.Case_study.deploy_perf) (mean r.Case_study.prom_perf);
      Format.printf "               drift detection: %a@." Prom.Detection_metrics.pp
        r.Case_study.detection;
      Printf.printf "               relabeled %d samples; retraining took %.2fs\n\n"
        r.Case_study.relabeled r.Case_study.retrain_time)
    Thread_coarsening.models
