examples/external_host.mli:
