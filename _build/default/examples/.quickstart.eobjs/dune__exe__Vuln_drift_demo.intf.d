examples/vuln_drift_demo.mli:
