examples/external_host.ml: Array List Monitor Printf Prom Prom_linalg Rng Service
