examples/quickstart.mli:
