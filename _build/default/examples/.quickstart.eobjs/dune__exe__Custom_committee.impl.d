examples/custom_committee.ml: Array Dataset Detector Framework Fun Mlp Nonconformity Printf Prom Prom_linalg Prom_ml Rng Vec
