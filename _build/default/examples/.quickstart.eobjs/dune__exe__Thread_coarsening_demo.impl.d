examples/thread_coarsening_demo.ml: Array Case_study Format List Printf Prom Prom_linalg Prom_tasks Stats Thread_coarsening
