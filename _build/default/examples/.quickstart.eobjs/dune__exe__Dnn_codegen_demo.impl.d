examples/dnn_codegen_demo.ml: Dnn_codegen List Printf Prom_synth Prom_tasks Schedule
