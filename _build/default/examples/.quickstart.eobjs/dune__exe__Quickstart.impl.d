examples/quickstart.ml: Array Assessment Dataset Framework Incremental List Logistic Printf Prom Prom_linalg Prom_ml Rng
