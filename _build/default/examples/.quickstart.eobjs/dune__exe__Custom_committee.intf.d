examples/custom_committee.mli:
