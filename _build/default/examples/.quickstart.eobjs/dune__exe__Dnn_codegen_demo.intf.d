examples/dnn_codegen_demo.mli:
