examples/thread_coarsening_demo.mli:
