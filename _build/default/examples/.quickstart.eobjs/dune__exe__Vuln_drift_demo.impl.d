examples/vuln_drift_demo.ml: Bug_inject Case_study Cast Format Generator Lexer List Printf Prom Prom_linalg Prom_synth Prom_tasks Rng Stats String Vuln_detection
