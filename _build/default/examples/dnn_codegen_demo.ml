(* Case study C5: a regression cost model drives a TVM-style schedule
   search. Deployed on unseen BERT variants, the stale model steers the
   search to mediocre schedules; PROM detects the drifting cost queries,
   profiles a small budget of them, and retrains the model online.

   Run with: dune exec examples/dnn_codegen_demo.exe *)

open Prom_synth
open Prom_tasks

let () =
  let r = Dnn_codegen.run ~train_samples:300 ~test_samples:100 ~search_workloads:3 ~seed:13 () in
  Printf.printf "Cost model: attention regressor, design log-MAE %.3f; %d calibration clusters (gap statistic)\n\n"
    r.Dnn_codegen.design_mae r.Dnn_codegen.n_clusters;
  Printf.printf "%-12s %10s %14s\n" "network" "native" "PROM-assisted";
  List.iter
    (fun row ->
      Printf.printf "%-12s %10.3f %14s\n"
        (Schedule.network_name row.Dnn_codegen.network)
        row.Dnn_codegen.native_ratio
        (match row.Dnn_codegen.prom_ratio with
        | Some p -> Printf.sprintf "%.3f" p
        | None -> "(in distribution)"))
    r.Dnn_codegen.rows;
  Printf.printf "\n(ratios are search-result throughput relative to the exhaustive oracle)\n"
