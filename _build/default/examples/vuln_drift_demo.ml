(* Case study C4: the paper's motivating example. A bug detector trained
   on early-era CVE-style samples faces 2021-2023 code where the same
   vulnerability classes hide behind helper functions and thread loops
   (paper Fig. 1). PROM flags the drifting inputs; relabeling a few of
   them restores most of the lost accuracy.

   Run with: dune exec examples/vuln_drift_demo.exe *)

open Prom_linalg
open Prom_synth
open Prom_tasks

let () =
  (* Show what the drift looks like at the source level. *)
  let rng = Rng.create 5 in
  let show era =
    let style = Generator.style_of_era rng era in
    let program =
      Bug_inject.inject rng ~era Bug_inject.Double_free (Generator.generate rng style)
    in
    let src = Cast.to_string program in
    Printf.printf "--- a %d double-free (%d tokens) ---\n%s\n\n" era
      (List.length (Lexer.tokenize src))
      (String.sub src 0 (min 430 (String.length src)))
  in
  show 2013;
  show 2023;

  let scenario = Vuln_detection.scenario ~per_era:48 ~seed:5 () in
  let spec = List.hd Vuln_detection.models (* VulDeePecker-style LSTM *) in
  let r = Case_study.run ~seed:5 scenario spec in
  let mean = Stats.mean in
  Printf.printf "%s on 8-class CWE classification:\n" r.Case_study.model_name;
  Printf.printf "  design-time accuracy    %.3f\n" (mean r.Case_study.design_perf);
  Printf.printf "  deployment (2021-2023)  %.3f\n" (mean r.Case_study.deploy_perf);
  Printf.printf "  after incremental fix   %.3f (relabeled %d)\n"
    (mean r.Case_study.prom_perf) r.Case_study.relabeled;
  Format.printf "  drift detection: %a@." Prom.Detection_metrics.pp r.Case_study.detection
