(* Quickstart: wrap a classifier in PROM and detect drifting inputs.

   We train a logistic-regression classifier on a two-cluster synthetic
   problem, deploy it behind a PROM detector, and then query it with
   in-distribution points (accepted) and points from a shifted cluster
   (rejected as drifting). This mirrors the paper's Fig. 4 template:
   partition data, train outside PROM, overwrite [predict] to return the
   prediction plus a drift verdict.

   Run with: dune exec examples/quickstart.exe *)

open Prom_linalg
open Prom_ml
open Prom

let make_blob rng ~cx ~cy ~label n =
  Array.init n (fun _ ->
      ( [| Rng.gaussian rng ~mu:cx ~sigma:0.7; Rng.gaussian rng ~mu:cy ~sigma:0.7 |],
        label ))

let () =
  let rng = Rng.create 42 in
  (* Two well-separated training clusters. *)
  let samples =
    Array.concat
      [ make_blob rng ~cx:0.0 ~cy:0.0 ~label:0 200; make_blob rng ~cx:3.0 ~cy:3.0 ~label:1 200 ]
  in
  let data = Dataset.create (Array.map fst samples) (Array.map snd samples) in

  (* Design phase: partition, train, calibrate — one call. *)
  let deployed = Framework.deploy ~trainer:(Logistic.trainer ()) ~seed:7 data in

  (* Check the conformal setup before going live (paper Sec. 5.2). *)
  let report = Framework.assess deployed in
  Printf.printf "initialization: coverage %.3f (deviation %.3f)%s\n" report.Assessment.coverage
    report.Assessment.deviation
    (if report.Assessment.alert then "  ** ALERT: poorly initialized **" else "");

  (* Deployment phase: in-distribution inputs are accepted... *)
  let probe name x =
    let prediction, drifted = Framework.predict deployed x in
    Printf.printf "%-28s -> class %d, %s\n" name prediction
      (if drifted then "REJECTED (drifting)" else "accepted")
  in
  probe "in-distribution (0.2, 0.1)" [| 0.2; 0.1 |];
  probe "in-distribution (2.9, 3.2)" [| 2.9; 3.2 |];

  (* ...while inputs from an unseen region are flagged. *)
  probe "drifted (8.0, -5.0)" [| 8.0; -5.0 |];
  probe "drifted (-6.0, 7.5)" [| -6.0; 7.5 |];

  (* Feedback loop: relabel a few flagged samples and retrain. *)
  let drift_stream =
    Array.map fst (make_blob rng ~cx:6.0 ~cy:(-3.0) ~label:0 50)
  in
  let oracle _ = 0 (* the new region belongs to class 0 *) in
  let updated, outcome =
    (* A generous relabeling budget so the calibration set learns the
       new region too. *)
    Framework.improve ~budget_fraction:0.3 deployed ~oracle drift_stream
  in
  Printf.printf "incremental learning: flagged %d, relabeled %d\n"
    (List.length outcome.Incremental.flagged_indices)
    (List.length outcome.Incremental.relabeled_indices);
  let prediction, drifted = Framework.predict updated [| 6.0; -3.0 |] in
  Printf.printf "after update: (6.0, -3.0) -> class %d, %s\n" prediction
    (if drifted then "still drifting" else "accepted")
